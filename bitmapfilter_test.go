package fsjoin

import (
	"reflect"
	"testing"
)

// TestBitmapFilterGoldenEquivalence runs the golden corpus through every
// FS-Join kernel and RIDPairsPPJoin with the bitmap filter forced on and
// forced off: the emitted pairs must be byte-identical (the filter only
// skips work), the on-run must actually build signatures and reject
// candidates, and RIDPairsPPJoin's verified-candidate count must shrink.
func TestBitmapFilterGoldenEquivalence(t *testing.T) {
	texts, _ := loadGolden(t)
	run := func(opt Options) *Result {
		t.Helper()
		res, err := SelfJoinStrings(texts, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, cfg := range []struct {
		name string
		opt  Options
	}{
		{"fsjoin-prefix", Options{Threshold: goldenTheta, Nodes: 3, JoinMethod: PrefixJoin}},
		{"fsjoin-index", Options{Threshold: goldenTheta, Nodes: 3, JoinMethod: IndexJoin}},
		{"fsjoin-loop", Options{Threshold: goldenTheta, Nodes: 3, JoinMethod: LoopJoin}},
		{"ridpairs", Options{Threshold: goldenTheta, Nodes: 3, Algorithm: RIDPairsPPJoin}},
	} {
		off := cfg.opt
		off.BitmapFilter = BitmapOff
		on := cfg.opt
		on.BitmapFilter = BitmapOn
		resOff, resOn := run(off), run(on)
		if !reflect.DeepEqual(formatPairs(resOn.Pairs), formatPairs(resOff.Pairs)) {
			t.Fatalf("%s: pairs differ with bitmap filter on (%d) vs off (%d)",
				cfg.name, len(resOn.Pairs), len(resOff.Pairs))
		}
		if resOff.Stats.BitmapBuilt != 0 || resOff.Stats.BitmapRejected != 0 || resOff.Stats.BitmapPassed != 0 {
			t.Fatalf("%s: bitmap counters nonzero with filter off: %+v", cfg.name, resOff.Stats)
		}
		if resOn.Stats.BitmapBuilt == 0 {
			t.Fatalf("%s: no signatures built with filter on", cfg.name)
		}
		if resOn.Stats.BitmapRejected == 0 {
			t.Fatalf("%s: bitmap filter never rejected on the golden corpus", cfg.name)
		}
		if cfg.name == "ridpairs" && resOn.Stats.VerifiedCandidates >= resOff.Stats.VerifiedCandidates {
			t.Fatalf("%s: verified candidates %d not below unfiltered %d",
				cfg.name, resOn.Stats.VerifiedCandidates, resOff.Stats.VerifiedCandidates)
		}
	}
}

// TestBitmapWidthPinned checks the explicit-width path end to end and the
// validation error for unsupported widths.
func TestBitmapWidthPinned(t *testing.T) {
	texts, _ := loadGolden(t)
	base, err := SelfJoinStrings(texts, Options{Threshold: goldenTheta, BitmapFilter: BitmapOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{64, 128, 256} {
		res, err := SelfJoinStrings(texts, Options{Threshold: goldenTheta, BitmapWidth: w})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if !reflect.DeepEqual(formatPairs(res.Pairs), formatPairs(base.Pairs)) {
			t.Fatalf("width %d: pairs differ from unfiltered run", w)
		}
	}
	for _, algo := range []Algorithm{FSJoin, RIDPairsPPJoin} {
		if _, err := SelfJoinStrings(texts, Options{Threshold: goldenTheta, Algorithm: algo, BitmapWidth: 100}); err == nil {
			t.Fatalf("%v: invalid bitmap width accepted", algo)
		}
	}
}

// TestBitmapEnvOverride checks the FSJOIN_BITMAP environment knob: auto
// mode defers to it, explicit modes ignore it.
func TestBitmapEnvOverride(t *testing.T) {
	texts, _ := loadGolden(t)
	t.Setenv("FSJOIN_BITMAP", "off")
	res, err := SelfJoinStrings(texts, Options{Threshold: goldenTheta})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BitmapBuilt != 0 {
		t.Fatalf("auto mode ignored FSJOIN_BITMAP=off: built %d", res.Stats.BitmapBuilt)
	}
	res, err = SelfJoinStrings(texts, Options{Threshold: goldenTheta, BitmapFilter: BitmapOn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BitmapBuilt == 0 {
		t.Fatal("explicit BitmapOn overridden by environment")
	}
}
