package fsjoin

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDurableIndexRoundTrip drives the public durability API end to end:
// Persist, acknowledged mutations, Close, LoadIndex — the recovered index
// must answer probes exactly like an in-memory twin that saw the same
// mutations, and the durability counters must reflect the history.
func TestDurableIndexRoundTrip(t *testing.T) {
	texts := corpus(40, 5)
	opt := IndexOptions{Threshold: 0.7}
	build := func() *Index {
		ix, err := BuildIndex(NewDictionary().NewTextCollection(texts), opt)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	ix, twin := build(), build()

	dir := t.TempDir()
	if err := ix.Persist(dir, Durability{WALSync: WALSyncAlways}); err != nil {
		t.Fatal(err)
	}
	if !ix.Durable() || twin.Durable() {
		t.Fatal("Durable() disagrees with Persist state")
	}

	mutate := func(x *Index) []int {
		var rids []int
		for i := 0; i < 6; i++ {
			set := strings.Fields(fmt.Sprintf("durable token%d token%d shared", i, i+1))
			rid, err := x.Insert(set)
			if err != nil {
				t.Fatal(err)
			}
			rids = append(rids, rid)
		}
		for _, rid := range []int{0, 7, rids[1]} {
			if err := x.Delete(rid); err != nil {
				t.Fatal(err)
			}
		}
		return rids
	}
	if r1, r2 := mutate(ix), mutate(twin); r1[0] != r2[0] {
		t.Fatalf("rid assignment diverged: %v vs %v", r1, r2)
	}
	if st := ix.Stats(); st.WALAppends != 9 || st.Generation != 1 {
		t.Fatalf("WALAppends=%d Generation=%d, want 9/1", st.WALAppends, st.Generation)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if ix.Durable() {
		t.Fatal("still durable after Close")
	}

	ld, err := LoadIndex(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := ld.Stats(); st.WALReplayed != 9 || st.WALTruncatedFrames != 0 {
		t.Fatalf("WALReplayed=%d WALTruncatedFrames=%d, want 9/0", st.WALReplayed, st.WALTruncatedFrames)
	}
	if ld.Len() != twin.Len() {
		t.Fatalf("recovered Len %d, twin %d", ld.Len(), twin.Len())
	}
	for _, q := range [][]string{
		strings.Fields(texts[3]),
		{"durable", "token2", "token3", "shared"},
		{"shared"},
	} {
		assertSameMatches(t, fmt.Sprintf("probe %v", q), ld.Probe(q), twin.Probe(q))
	}

	// Loading under another threshold is a stale config, not corruption:
	// the error wraps ErrNoIndex and the reject counter ticks.
	before := IndexLoadRejects()["index.load.rejects.stale"]
	if _, err := LoadIndex(dir, IndexOptions{Threshold: 0.9}); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("stale load error = %v, want ErrNoIndex", err)
	}
	if after := IndexLoadRejects()["index.load.rejects.stale"]; after != before+1 {
		t.Fatalf("stale reject counter %d -> %d, want +1", before, after)
	}
}

// TestServerMaintainIndex: the server's supervised maintenance goroutine
// flushes and auto-compacts a durable index in the background, stops on
// drain, and refuses new registrations after shutdown.
func TestServerMaintainIndex(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 8 << 20, MaintenanceInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var passes atomic.Int64
	srv.testHookMaintain = func(err error) {
		if err != nil {
			t.Errorf("maintenance pass failed: %v", err)
		}
		passes.Add(1)
	}

	ix, err := BuildIndex(NewDictionary().NewTextCollection(corpus(30, 5)), IndexOptions{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d := Durability{
		WALSync:     WALSyncInterval,
		AutoCompact: AutoCompact{MaxLogRecords: 4},
	}
	if err := ix.Persist(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := srv.MaintainIndex(ix); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		if _, err := ix.Insert([]string{fmt.Sprintf("bg%d", i), "bg-shared"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for ix.Stats().AutoCompactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintenance goroutine never auto-compacted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The goroutine stopped on drain: no further passes fire.
	n := passes.Load()
	time.Sleep(20 * time.Millisecond)
	if m := passes.Load(); m != n {
		t.Fatalf("maintenance still running after Shutdown (%d -> %d passes)", n, m)
	}
	if st := srv.Stats(); st.MaintenanceFailed != 0 || st.MaintenancePanicked != 0 {
		t.Fatalf("failed=%d panicked=%d, want 0/0", st.MaintenanceFailed, st.MaintenancePanicked)
	}
	if err := srv.MaintainIndex(ix); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("MaintainIndex after Shutdown = %v, want ErrServerClosed", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadIndex(dir, IndexOptions{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if ld.Len() != ix.Len() {
		t.Fatalf("reload lost records across auto-compactions: %d != %d", ld.Len(), ix.Len())
	}
}

// TestServerMaintainPanicIsolated: a panicking maintenance pass is
// recovered into a *JobError, counted, and does not kill the loop or the
// server.
func TestServerMaintainPanicIsolated(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 8 << 20, MaintenanceInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	saw := make(chan error, 16)
	srv.testHookMaintain = func(err error) {
		select {
		case saw <- err:
		default:
		}
	}
	// An Index with no internal state makes every pass panic.
	if err := srv.MaintainIndex(&Index{}); err != nil {
		t.Fatal(err)
	}
	var got error
	select {
	case got = <-saw:
	case <-time.After(5 * time.Second):
		t.Fatal("no maintenance pass observed")
	}
	var jerr *JobError
	if !errors.As(got, &jerr) || jerr.Job != "index-maintenance" {
		t.Fatalf("pass error = %v, want *JobError for index-maintenance", got)
	}
	// The loop survived its own panic: more passes keep arriving.
	select {
	case <-saw:
	case <-time.After(5 * time.Second):
		t.Fatal("maintenance loop died after the panic")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.MaintenancePanicked == 0 || st.MaintenanceFailed < st.MaintenancePanicked {
		t.Fatalf("failed=%d panicked=%d, want panicked ≥ 1 and failed ≥ panicked", st.MaintenanceFailed, st.MaintenancePanicked)
	}
}
