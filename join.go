package fsjoin

import (
	"errors"
	"fmt"

	"fsjoin/internal/core"
	"fsjoin/internal/filters"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/massjoin"
	"fsjoin/internal/minhash"
	"fsjoin/internal/result"
	"fsjoin/internal/ridpairs"
	"fsjoin/internal/tokens"
	"fsjoin/internal/vsmart"
)

// ErrSelfJoinOnly is returned when an R-S join is requested with an
// algorithm that only supports self-joins (the MassJoin variants — the
// form the paper evaluates them in).
var ErrSelfJoinOnly = errors.New("fsjoin: algorithm supports self-joins only (use FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin or ApproxLSHJoin)")

// Collection is a prepared set of records ready to join. Building a
// Collection once lets several joins share the tokenisation work.
type Collection struct {
	c *Dictionary
	t *tokens.Collection
}

// Dictionary interns token strings; collections joined together must share
// one. The zero value is not usable; use NewDictionary.
type Dictionary struct {
	d *tokens.Dictionary
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary { return &Dictionary{d: tokens.NewDictionary()} }

// NewCollection encodes pre-tokenised records (one string slice per record)
// against the dictionary. Record i gets id i.
func (d *Dictionary) NewCollection(sets [][]string) *Collection {
	c := &tokens.Collection{Records: make([]tokens.Record, 0, len(sets))}
	for i, set := range sets {
		ids := make([]tokens.ID, len(set))
		for j, tok := range set {
			ids[j] = d.d.Intern(tok)
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
	}
	return &Collection{c: d, t: c}
}

// NewTextCollection tokenises raw texts with the word tokenizer (lower-
// cased, split on non-alphanumerics) and encodes them. Record i gets id i.
func (d *Dictionary) NewTextCollection(texts []string) *Collection {
	raws := make([]tokens.Raw, len(texts))
	for i, t := range texts {
		raws[i] = tokens.Raw{RID: int32(i), Text: t}
	}
	return &Collection{c: d, t: d.d.Encode(raws, tokens.WordTokenizer{})}
}

// Len returns the number of records.
func (c *Collection) Len() int { return c.t.Len() }

// SelfJoinSets joins pre-tokenised records against themselves.
func SelfJoinSets(sets [][]string, opt Options) (*Result, error) {
	return NewDictionary().NewCollection(sets).SelfJoin(opt)
}

// SelfJoinStrings tokenises texts with the word tokenizer and self-joins.
func SelfJoinStrings(texts []string, opt Options) (*Result, error) {
	return NewDictionary().NewTextCollection(texts).SelfJoin(opt)
}

// JoinSets runs an R-S join between two pre-tokenised collections: every
// result pair matches one R record (Pair.A) with one S record (Pair.B).
// R and S are encoded against one fresh dictionary; record ids are the
// slice indices within each relation, so the two id spaces overlap — pairs
// are oriented, never deduplicated across relations, and (i, i) is a
// legitimate result when R[i] and S[i] are similar (DESIGN.md §12).
func JoinSets(r, s [][]string, opt Options) (*Result, error) {
	d := NewDictionary()
	return d.NewCollection(r).Join(d.NewCollection(s), opt)
}

// JoinStrings tokenises both relations with the word tokenizer and runs an
// R-S join; see JoinSets for the pairing semantics.
func JoinStrings(r, s []string, opt Options) (*Result, error) {
	d := NewDictionary()
	return d.NewTextCollection(r).Join(d.NewTextCollection(s), opt)
}

// RSJoin runs an R-S join between two prepared collections sharing a
// Dictionary. It is Collection.Join as a free function, named for symmetry
// with the paper's R-S formulation.
func RSJoin(r, s *Collection, opt Options) (*Result, error) {
	return r.Join(s, opt)
}

// SelfJoin runs the configured algorithm over the collection.
func (c *Collection) SelfJoin(opt Options) (*Result, error) {
	if opt.Workers > 1 && opt.runtime.Executor == nil {
		return runCluster(c, nil, opt)
	}
	cleanup, err := opt.resolveTransport()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	fn, err := opt.Function.internal()
	if err != nil {
		return nil, err
	}
	bm, err := opt.bitmapConfig()
	if err != nil {
		return nil, err
	}
	cl := opt.cluster()
	switch opt.Algorithm {
	case FSJoin, FSJoinV:
		hp := opt.HorizontalPivots
		if opt.Algorithm == FSJoinV {
			hp = 0
		} else if hp == 0 {
			hp = 10
		}
		res, err := core.SelfJoin(c.t, core.Options{
			Fn:                 fn,
			Theta:              opt.Threshold,
			PivotMethod:        opt.PivotSelection.internal(),
			VerticalPartitions: opt.VerticalPartitions,
			HorizontalPivots:   hp,
			JoinMethod:         opt.JoinMethod.internal(),
			Cluster:            cl,
			Seed:               opt.Seed,
			Ctx:                opt.Context,
			LocalParallelism:   opt.localParallelism(),
			Fault:              opt.faultPolicy(),
			MemoryBudget:       opt.MemoryBudget,
			SpillDir:           opt.SpillDir,
			CheckpointDir:      opt.CheckpointDir,
			CheckpointSalt:     opt.checkpointSalt(),
			Runtime:            opt.runtime,
			Bitmap:             bm,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.FilterOutputRecords), nil
	case RIDPairsPPJoin:
		res, err := ridpairs.SelfJoin(c.t, ridpairs.Options{
			Fn: fn, Theta: opt.Threshold, Cluster: cl, Ctx: opt.Context,
			Parallelism: opt.localParallelism(), Fault: opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
			Bitmap:  bm,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Pipeline.Counter("ridpairs.comparisons")), nil
	case VSmartJoin:
		res, err := vsmart.SelfJoin(c.t, vsmart.Options{
			Fn: fn, Theta: opt.Threshold, Cluster: cl, MaxPairEmits: opt.WorkBudget,
			Ctx: opt.Context, Parallelism: opt.localParallelism(),
			Fault:        opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Pipeline.Counter("vsmart.pair.emits")), nil
	case ApproxLSHJoin:
		if opt.Function != Jaccard {
			return nil, errors.New("fsjoin: ApproxLSHJoin supports Jaccard only")
		}
		res, err := minhash.SelfJoin(c.t, minhash.Params{
			Theta: opt.Threshold, Seed: uint64(opt.Seed), Cluster: cl,
			Ctx: opt.Context, Parallelism: opt.localParallelism(),
			Fault:        opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Candidates), nil
	case MassJoinMerge, MassJoinMergeLight:
		variant := massjoin.Merge
		if opt.Algorithm == MassJoinMergeLight {
			variant = massjoin.MergeLight
		}
		res, err := massjoin.SelfJoin(c.t, massjoin.Options{
			Fn: fn, Theta: opt.Threshold, Variant: variant, Cluster: cl,
			MaxSignatures: opt.WorkBudget, Ctx: opt.Context,
			Parallelism: opt.localParallelism(), Fault: opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Pipeline.Counter("massjoin.candidates")), nil
	default:
		return nil, fmt.Errorf("fsjoin: unknown algorithm %d", int(opt.Algorithm))
	}
}

// Join runs an R-S join between two collections sharing a dictionary: the
// receiver is R, s is S, and every result pair carries the R-side id in
// Pair.A. All algorithms except the MassJoin variants support R-S joins
// (ApproxLSHJoin remains Jaccard-only); MassJoin returns ErrSelfJoinOnly.
func (c *Collection) Join(s *Collection, opt Options) (*Result, error) {
	if s == nil {
		return nil, errors.New("fsjoin: nil S collection")
	}
	if c.c != s.c {
		return nil, errors.New("fsjoin: collections must share a Dictionary")
	}
	if opt.Workers > 1 && opt.runtime.Executor == nil {
		return runCluster(c, s, opt)
	}
	cleanup, err := opt.resolveTransport()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	fn, err := opt.Function.internal()
	if err != nil {
		return nil, err
	}
	bm, err := opt.bitmapConfig()
	if err != nil {
		return nil, err
	}
	switch opt.Algorithm {
	case FSJoin, FSJoinV:
	case RIDPairsPPJoin:
		res, err := ridpairs.Join(c.t, s.t, ridpairs.Options{
			Fn: fn, Theta: opt.Threshold, Cluster: opt.cluster(), Ctx: opt.Context,
			Parallelism: opt.localParallelism(), Fault: opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
			Bitmap:  bm,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Pipeline.Counter("ridpairs.comparisons")), nil
	case VSmartJoin:
		res, err := vsmart.Join(c.t, s.t, vsmart.Options{
			Fn: fn, Theta: opt.Threshold, Cluster: opt.cluster(), MaxPairEmits: opt.WorkBudget,
			Ctx: opt.Context, Parallelism: opt.localParallelism(),
			Fault:        opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Pipeline.Counter("vsmart.pair.emits")), nil
	case ApproxLSHJoin:
		if opt.Function != Jaccard {
			return nil, errors.New("fsjoin: ApproxLSHJoin supports Jaccard only")
		}
		res, err := minhash.Join(c.t, s.t, minhash.Params{
			Theta: opt.Threshold, Seed: uint64(opt.Seed), Cluster: opt.cluster(),
			Ctx: opt.Context, Parallelism: opt.localParallelism(),
			Fault:        opt.faultPolicy(),
			MemoryBudget: opt.MemoryBudget, SpillDir: opt.SpillDir,
			CheckpointDir: opt.CheckpointDir, CheckpointSalt: opt.checkpointSalt(),
			Runtime: opt.runtime,
		})
		if err != nil {
			return nil, err
		}
		return publish(res.Pairs, res.Pipeline, res.Candidates), nil
	default:
		return nil, ErrSelfJoinOnly
	}
	hp := opt.HorizontalPivots
	if opt.Algorithm == FSJoinV {
		hp = 0
	} else if hp == 0 {
		hp = 10
	}
	res, err := core.Join(c.t, s.t, core.Options{
		Fn:                 fn,
		Theta:              opt.Threshold,
		PivotMethod:        opt.PivotSelection.internal(),
		VerticalPartitions: opt.VerticalPartitions,
		HorizontalPivots:   hp,
		JoinMethod:         opt.JoinMethod.internal(),
		Cluster:            opt.cluster(),
		Seed:               opt.Seed,
		Ctx:                opt.Context,
		LocalParallelism:   opt.localParallelism(),
		Fault:              opt.faultPolicy(),
		MemoryBudget:       opt.MemoryBudget,
		SpillDir:           opt.SpillDir,
		CheckpointDir:      opt.CheckpointDir,
		CheckpointSalt:     opt.checkpointSalt(),
		Runtime:            opt.runtime,
		Bitmap:             bm,
	})
	if err != nil {
		return nil, err
	}
	return publish(res.Pairs, res.Pipeline, res.FilterOutputRecords), nil
}

// publish converts internal results into the public form.
func publish(pairs []result.Pair, p *mapreduce.Pipeline, candidates int64) *Result {
	out := &Result{Pairs: make([]Pair, len(pairs))}
	for i, pr := range pairs {
		out.Pairs[i] = Pair{A: int(pr.A), B: int(pr.B), Common: pr.Common, Similarity: pr.Sim}
	}
	ck := p.CheckpointStats()
	out.Stats = Stats{
		SimulatedTime:         p.TotalSimulatedTime(),
		ShuffleRecords:        p.TotalShuffleRecords(),
		ShuffleBytes:          p.TotalShuffleBytes(),
		LoadImbalance:         p.MaxLoadImbalance(),
		Candidates:            candidates,
		BitmapBuilt:           p.Counter(filters.CtrBitmapBuilt),
		BitmapRejected:        p.Counter(filters.CtrBitmapRejected),
		BitmapPassed:          p.Counter(filters.CtrBitmapPassed),
		VerifiedCandidates:    p.Counter(filters.CtrVerifyCandidates),
		SpillRuns:             p.Counter(mapreduce.CounterSpillRuns),
		SpillBytes:            p.Counter(mapreduce.CounterSpillBytes),
		ShufflePeakBytes:      p.MaxCounter(mapreduce.CounterShufflePeak),
		RecordsSkipped:        p.Counter(mapreduce.CounterRecordsSkipped),
		CheckpointHits:        ck.Hits,
		CheckpointMisses:      ck.Misses,
		TasksReassigned:       p.Counter(mapreduce.CounterTasksReassigned),
		PartitionsRedelivered: p.Counter(mapreduce.CounterPartitionsRedelivered),
		RSCandidates:          p.Counter(result.CtrRSCandidates),
		RSPairs:               p.Counter(result.CtrRSEmitted),
	}
	return out
}
