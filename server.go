package fsjoin

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"fsjoin/internal/checkpoint"
	"fsjoin/internal/sched"
)

// Typed serving-layer failures. A shed job did no work: it was rejected
// before tokenising, partitioning or spilling anything.
var (
	// ErrOverloaded rejects a job the server cannot take: its lease
	// exceeds the whole pool, or the admission queue is full.
	ErrOverloaded = errors.New("fsjoin: server overloaded")
	// ErrQueueTimeout rejects a job that waited in the admission queue
	// longer than its queue-wait bound.
	ErrQueueTimeout = errors.New("fsjoin: queue-wait timeout")
	// ErrServerClosed rejects jobs submitted to — or still queued on — a
	// server that has begun shutting down.
	ErrServerClosed = errors.New("fsjoin: server closed")
)

// JobError is the typed failure of a job whose execution panicked. The
// server recovers the panic, so sibling jobs keep running; the caller gets
// the recovered value and stack instead of a crashed process.
type JobError struct {
	// Job labels the failed job (Job.Key when set, else a server-assigned
	// sequence label).
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("fsjoin: job %s panicked: %v", e.Job, e.Value)
}

// Unwrap exposes the panic value when it is itself an error, so errors.Is
// reaches a cause thrown through the panic.
func (e *JobError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// MemoryBudget is the process-wide shuffle-memory pool, in bytes,
	// shared by every concurrent job. Required (> 0): each admitted job
	// holds a lease carved from this pool for its whole run.
	MemoryBudget int64
	// MaxConcurrent caps jobs running at once; 0 means one per CPU core.
	MaxConcurrent int
	// MaxQueue bounds jobs waiting for admission; jobs arriving at a full
	// queue are shed with ErrOverloaded. 0 means 16; negative disables
	// queueing entirely (anything not admitted immediately is shed).
	MaxQueue int
	// DefaultDeadline bounds each job's execution (queue wait excluded)
	// unless the job sets its own; 0 means none. An expired deadline
	// aborts the job with an error wrapping context.DeadlineExceeded.
	DefaultDeadline time.Duration
	// QueueTimeout bounds each job's admission wait unless the job sets
	// its own; 0 means wait indefinitely (until the context or server
	// says otherwise).
	QueueTimeout time.Duration
	// SpillRoot is the parent directory for all jobs' spill files; ""
	// creates a private directory under the OS temp dir, removed on
	// Shutdown.
	SpillRoot string
	// CheckpointRoot, when non-empty, enables durable stage checkpoints
	// for jobs that set a Key: each keyed job checkpoints under its own
	// subdirectory, so concurrent jobs never collide on stage files.
	CheckpointRoot string
	// MaintenanceInterval paces the background maintenance goroutines
	// started by MaintainIndex (WAL group-commit flush + auto-compaction
	// checks); 0 means 1s.
	MaintenanceInterval time.Duration
}

// Job is one join submitted to a Server.
type Job struct {
	// Collection is the input (the R side for R-S joins). Required.
	Collection *Collection
	// Other, when non-nil, makes the job an R-S join against this S side.
	Other *Collection
	// Options configures the join exactly as for direct calls. The value
	// is owned by the caller and never mutated; the server applies its
	// lease, context and directories to a private copy.
	Options Options
	// Priority orders admission: higher first, FIFO among equals.
	Priority int
	// Deadline overrides ServerOptions.DefaultDeadline; 0 inherits it.
	Deadline time.Duration
	// QueueTimeout overrides ServerOptions.QueueTimeout; 0 inherits it.
	QueueTimeout time.Duration
	// MemoryLease is the job's share of the global pool, in bytes. 0
	// falls back to Options.MemoryBudget, then to an equal share of the
	// pool (MemoryBudget / MaxConcurrent). A lease larger than the whole
	// pool is shed with ErrOverloaded.
	MemoryLease int64
	// Key, with ServerOptions.CheckpointRoot, names the job's private
	// checkpoint subdirectory — resubmitting the same Key with the same
	// input and options replays finished stages. "" disables
	// checkpointing for this job.
	Key string

	// testHookPreRun, when set by in-package tests, runs inside the
	// panic-isolated execution region.
	testHookPreRun func()
}

// ServerStats snapshots a server's serving activity.
type ServerStats struct {
	// Admitted, Shed, TimedOut and Cancelled count admission outcomes
	// (see ErrOverloaded / ErrQueueTimeout; Cancelled is contexts expiring
	// in the queue).
	Admitted  int64
	Shed      int64
	TimedOut  int64
	Cancelled int64
	// Completed and Failed count finished jobs by outcome; Panicked is
	// the subset of Failed recovered from a panic.
	Completed int64
	Failed    int64
	Panicked  int64
	// MaintenanceFailed and MaintenancePanicked count failing background
	// index-maintenance passes (see MaintainIndex); the panicked subset was
	// recovered into a *JobError.
	MaintenanceFailed   int64
	MaintenancePanicked int64
	// Running and Queued are current occupancy; PeakQueued the queue's
	// high-water mark; MemoryInUse the leased share of the pool.
	Running     int
	Queued      int
	PeakQueued  int
	MemoryInUse int64
}

// Server runs many joins concurrently under one global contract: a shared
// memory pool with per-job leases, bounded priority admission with
// deadlines and queue-wait timeouts, typed load shedding, panic isolation,
// and graceful drain. Methods are safe for concurrent use.
//
//	srv, _ := fsjoin.NewServer(fsjoin.ServerOptions{MemoryBudget: 64 << 20})
//	defer srv.Shutdown(context.Background())
//	res, err := srv.SelfJoin(ctx, coll, fsjoin.Options{Threshold: 0.8})
type Server struct {
	opt  ServerOptions
	gate *sched.Gate

	mu        sync.Mutex
	closed    bool
	nextID    int64
	cancels   map[int64]context.CancelFunc
	completed int64
	failed    int64
	panicked  int64

	running   sync.WaitGroup
	spillRoot string
	ownSpill  bool

	// drain closes when Shutdown begins, stopping maintenance goroutines
	// before the job drain is waited on.
	drain     chan struct{}
	drainOnce sync.Once

	maintFailed   int64
	maintPanicked int64
	lastMaintErr  error

	// testHookMaintain, when set by in-package tests, observes the outcome
	// of every maintenance pass.
	testHookMaintain func(err error)
}

// NewServer validates the options and returns a running server.
func NewServer(opt ServerOptions) (*Server, error) {
	if opt.MemoryBudget <= 0 {
		return nil, errors.New("fsjoin: ServerOptions.MemoryBudget must be positive")
	}
	slots := opt.MaxConcurrent
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	queue := opt.MaxQueue
	switch {
	case queue == 0:
		queue = 16
	case queue < 0:
		queue = 0
	}
	s := &Server{
		opt:     opt,
		gate:    sched.New(opt.MemoryBudget, slots, queue),
		cancels: make(map[int64]context.CancelFunc),
		drain:   make(chan struct{}),
	}
	s.opt.MaxConcurrent = slots
	if opt.SpillRoot != "" {
		if err := os.MkdirAll(opt.SpillRoot, 0o700); err != nil {
			return nil, fmt.Errorf("fsjoin: spill root: %w", err)
		}
		s.spillRoot = opt.SpillRoot
	} else {
		dir, err := os.MkdirTemp("", "fsjoin-serve-")
		if err != nil {
			return nil, fmt.Errorf("fsjoin: spill root: %w", err)
		}
		s.spillRoot, s.ownSpill = dir, true
	}
	return s, nil
}

// SelfJoin submits a self-join with default job settings. Equivalent to
// Run with a Job carrying just the collection and options.
func (s *Server) SelfJoin(ctx context.Context, c *Collection, opt Options) (*Result, error) {
	return s.Run(ctx, Job{Collection: c, Options: opt})
}

// Join submits an R-S join with default job settings. Equivalent to Run
// with a Job carrying the R collection, the S side in Other, and options.
func (s *Server) Join(ctx context.Context, r, srel *Collection, opt Options) (*Result, error) {
	return s.Run(ctx, Job{Collection: r, Other: srel, Options: opt})
}

// Run submits one job and blocks until it completes, is shed, or fails.
// Admission may queue the job behind higher-priority work; ctx cancels
// both the wait and (together with the job's deadline) the execution. The
// error is ErrOverloaded / ErrQueueTimeout / ErrServerClosed for shed jobs
// (no work was started), a *JobError for a panicking job, and otherwise
// whatever the join returns — wrapping context.DeadlineExceeded when the
// job's deadline expired mid-run.
func (s *Server) Run(ctx context.Context, job Job) (*Result, error) {
	if job.Collection == nil {
		return nil, errors.New("fsjoin: job has no collection")
	}
	if job.Options.MemoryBudget < 0 || job.MemoryLease < 0 {
		return nil, errors.New("fsjoin: server jobs cannot disable memory accounting (negative budget/lease)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	lease := job.MemoryLease
	if lease == 0 {
		lease = job.Options.MemoryBudget
	}
	if lease == 0 {
		lease = s.opt.MemoryBudget / int64(s.opt.MaxConcurrent)
		if lease < 1 {
			lease = 1
		}
	}
	queueTimeout := job.QueueTimeout
	if queueTimeout == 0 {
		queueTimeout = s.opt.QueueTimeout
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	// Joining the WaitGroup before unlocking keeps Shutdown's Wait from
	// missing a job admitted concurrently with the close.
	s.running.Add(1)
	s.mu.Unlock()
	defer s.running.Done()

	waitStart := time.Now()
	grant, err := s.gate.Acquire(ctx, lease, job.Priority, queueTimeout)
	if err != nil {
		return nil, translateSched(err)
	}
	defer grant.Release()
	queueWait := time.Since(waitStart)

	// Per-job execution context: the job's own Context (when set) is the
	// parent, else the submission context; the deadline bounds execution
	// only — queue wait was already charged against queueTimeout.
	parent := ctx
	if job.Options.Context != nil {
		parent = job.Options.Context
	}
	deadline := job.Deadline
	if deadline == 0 {
		deadline = s.opt.DefaultDeadline
	}
	var (
		jctx   context.Context
		cancel context.CancelFunc
	)
	if deadline > 0 {
		jctx, cancel = context.WithTimeout(parent, deadline)
	} else {
		jctx, cancel = context.WithCancel(parent)
	}
	defer cancel()

	s.mu.Lock()
	if s.closed {
		// Shutdown won the race after admission: refuse to start.
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	id := s.nextID
	s.nextID++
	s.cancels[id] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()

	res, err := s.execute(jctx, job, grant.Bytes())
	s.mu.Lock()
	if err != nil {
		s.failed++
		if _, ok := err.(*JobError); ok {
			s.panicked++
		}
	} else {
		s.completed++
	}
	s.mu.Unlock()
	if res != nil {
		res.Stats.QueueWait = queueWait
		res.Stats.MemoryLease = grant.Bytes()
	}
	return res, err
}

// execute runs one admitted job with its lease applied, recovering any
// panic into a *JobError so one broken job cannot take down its siblings.
func (s *Server) execute(ctx context.Context, job Job, lease int64) (res *Result, err error) {
	opt := job.Options // private copy; the caller's value is never touched
	opt.Context = ctx
	opt.MemoryBudget = lease
	opt.SpillDir = s.spillRoot
	opt.CheckpointDir = ""
	if s.opt.CheckpointRoot != "" && job.Key != "" {
		opt.CheckpointDir = filepath.Join(s.opt.CheckpointRoot, sanitizeKey(job.Key))
	}
	defer func() {
		if r := recover(); r != nil {
			label := job.Key
			if label == "" {
				label = "(unkeyed)"
			}
			res, err = nil, &JobError{Job: label, Value: r, Stack: debug.Stack()}
		}
	}()
	if job.testHookPreRun != nil {
		job.testHookPreRun()
	}
	if job.Other != nil {
		return job.Collection.Join(job.Other, opt)
	}
	return job.Collection.SelfJoin(opt)
}

// probeLeaseCap bounds the memory lease a probe holds: probes never spill
// or shuffle, so their admission cost is a token share of the pool — enough
// to be counted, never enough to starve a batch join.
const probeLeaseCap = 64 << 10

// probePriority orders probes ahead of default-priority batch jobs in the
// admission queue: single-record queries are latency-bound while batch
// joins are throughput-bound, so an online probe should not sit behind a
// queued multi-minute join.
const probePriority = 1

// Probe serves one single-record similarity query against a probe index
// through the server's admission machinery: the query takes a (small)
// memory lease from the same global pool batch jobs use, waits in the same
// priority queue (ahead of default-priority jobs), is shed with the same
// typed errors under overload or shutdown, and runs panic-isolated. The
// index itself is built with BuildIndex or LoadIndex and may be shared by
// any number of concurrent probes.
func (s *Server) Probe(ctx context.Context, ix *Index, set []string) ([]Match, error) {
	out, err := s.ProbeBatch(ctx, ix, [][]string{set})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// ProbeBatch serves many probes under one admission grant: the batch is
// admitted once, then each set is answered in order (ctx is honoured
// between sets). Element i of the result answers sets[i].
func (s *Server) ProbeBatch(ctx context.Context, ix *Index, sets [][]string) (_ [][]Match, err error) {
	if ix == nil {
		return nil, errors.New("fsjoin: probe against nil index")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	lease := s.opt.MemoryBudget / int64(s.opt.MaxConcurrent)
	if lease < 1 {
		lease = 1
	}
	if lease > probeLeaseCap {
		lease = probeLeaseCap
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.running.Add(1)
	s.mu.Unlock()
	defer s.running.Done()

	grant, err := s.gate.Acquire(ctx, lease, probePriority, s.opt.QueueTimeout)
	if err != nil {
		return nil, translateSched(err)
	}
	defer grant.Release()

	s.mu.Lock()
	if s.closed {
		// Shutdown won the race after admission: refuse to start.
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if err != nil {
			s.failed++
			if _, ok := err.(*JobError); ok {
				s.panicked++
			}
		} else {
			s.completed++
		}
		s.mu.Unlock()
	}()

	out := make([][]Match, len(sets))
	defer func() {
		if r := recover(); r != nil {
			err = &JobError{Job: "probe", Value: r, Stack: debug.Stack()}
		}
	}()
	for i, set := range sets {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		out[i] = ix.Probe(set)
	}
	return out, nil
}

// MaintainIndex runs ix's maintenance — pending WAL group commits are
// flushed and the auto-compaction policy evaluated — in a supervised
// background goroutine every ServerOptions.MaintenanceInterval (default
// 1s) until the server shuts down. A panicking pass is recovered into a
// *JobError (visible through ServerStats.MaintenancePanicked) and the loop
// keeps running: one broken compaction cannot take maintenance down with
// it. Compaction takes the index write lock, so it coexists with
// concurrent probes and mutations under the index's existing RWMutex
// regime. Safe to call for several indexes; each gets its own goroutine.
func (s *Server) MaintainIndex(ix *Index) error {
	if ix == nil {
		return errors.New("fsjoin: maintain nil index")
	}
	interval := s.opt.MaintenanceInterval
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.running.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.running.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.drain:
				return
			case <-ticker.C:
			}
			err := s.maintainOnce(ix)
			s.mu.Lock()
			if err != nil {
				s.maintFailed++
				if _, ok := err.(*JobError); ok {
					s.maintPanicked++
				}
				s.lastMaintErr = err
			}
			hook := s.testHookMaintain
			s.mu.Unlock()
			if hook != nil {
				hook(err)
			}
		}
	}()
	return nil
}

// maintainOnce runs one panic-isolated maintenance pass.
func (s *Server) maintainOnce(ix *Index) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &JobError{Job: "index-maintenance", Value: r, Stack: debug.Stack()}
		}
	}()
	return ix.Maintain()
}

// Shutdown drains the server: new and queued jobs are rejected with
// ErrServerClosed, running jobs continue until they finish, hit their
// deadlines, or — once ctx is done — are cancelled. After every job has
// returned, spill and checkpoint temp files are swept. Idempotent; safe
// to call concurrently with Run.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drain) })
	s.gate.Close()

	done := make(chan struct{})
	go func() {
		s.running.Wait()
		close(done)
	}()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-done:
	case <-ctxDone:
		// Out of patience: cancel every running job, then wait for the
		// engines to unwind (prompt, thanks to mid-task cancellation).
		s.mu.Lock()
		for _, cancel := range s.cancels {
			cancel()
		}
		s.mu.Unlock()
		<-done
	}
	return s.sweep()
}

// sweep removes serving temp state: the private spill root (or leftover
// per-job spill dirs under a caller-provided one) and in-flight checkpoint
// temp files. Durable checkpoints are kept.
func (s *Server) sweep() error {
	var firstErr error
	if s.ownSpill {
		if err := os.RemoveAll(s.spillRoot); err != nil && firstErr == nil {
			firstErr = err
		}
	} else {
		entries, err := os.ReadDir(s.spillRoot)
		if err != nil && firstErr == nil && !os.IsNotExist(err) {
			firstErr = err
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "fsjoin-spill-") {
				os.RemoveAll(filepath.Join(s.spillRoot, e.Name()))
			}
		}
	}
	if s.opt.CheckpointRoot != "" {
		if err := checkpoint.SweepTemps(s.opt.CheckpointRoot); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats snapshots the server's admission and completion counters.
func (s *Server) Stats() ServerStats {
	g := s.gate.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		Admitted: g.Admitted, Shed: g.Shed, TimedOut: g.TimedOut,
		Cancelled: g.Cancelled,
		Completed: s.completed, Failed: s.failed, Panicked: s.panicked,
		MaintenanceFailed: s.maintFailed, MaintenancePanicked: s.maintPanicked,
		Running: g.Running, Queued: g.Queued, PeakQueued: g.PeakQueued,
		MemoryInUse: g.MemoryInUse,
	}
}

// translateSched maps the scheduler's typed failures onto the public
// sentinels, preserving the detail text.
func translateSched(err error) error {
	switch {
	case errors.Is(err, sched.ErrOverloaded):
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	case errors.Is(err, sched.ErrQueueTimeout):
		return ErrQueueTimeout
	case errors.Is(err, sched.ErrClosed):
		return ErrServerClosed
	default:
		return err // context cancellation / deadline from the queue wait
	}
}

// sanitizeKey maps an arbitrary job key onto a single path segment.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, key)
}
