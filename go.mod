module fsjoin

go 1.22
