package fsjoin_test

import (
	"fmt"

	"fsjoin"
)

// The smallest end-to-end self-join: three records, one near-duplicate
// pair.
func ExampleSelfJoinSets() {
	docs := [][]string{
		{"set", "similarity", "join", "mapreduce"},
		{"set", "similarity", "joins", "mapreduce"},
		{"completely", "different", "tokens"},
	}
	res, err := fsjoin.SelfJoinSets(docs, fsjoin.Options{Threshold: 0.6})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("%d ~ %d: %d common tokens, Jaccard %.2f\n", p.A, p.B, p.Common, p.Similarity)
	}
	// Output:
	// 0 ~ 1: 3 common tokens, Jaccard 0.60
}

// Raw text is word-tokenised (lower-cased, split on non-alphanumerics)
// before joining.
func ExampleSelfJoinStrings() {
	res, err := fsjoin.SelfJoinStrings([]string{
		"The quick brown fox!",
		"the QUICK brown fox...",
		"lorem ipsum dolor",
	}, fsjoin.Options{Threshold: 0.9})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Pairs), "pair(s); similarity", res.Pairs[0].Similarity)
	// Output:
	// 1 pair(s); similarity 1
}

// An R-S join links records across two collections sharing one dictionary.
func ExampleCollection_Join() {
	dict := fsjoin.NewDictionary()
	r := dict.NewTextCollection([]string{"distributed set similarity joins"})
	s := dict.NewTextCollection([]string{
		"distributed set similarity joins extended",
		"unrelated title",
	})
	res, err := r.Join(s, fsjoin.Options{Threshold: 0.7, Function: fsjoin.Dice})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("R[%d] matches S[%d] (Dice %.2f)\n", p.A, p.B, p.Similarity)
	}
	// Output:
	// R[0] matches S[0] (Dice 0.89)
}

// Every baseline produces the same exact results as FS-Join; pick one with
// Options.Algorithm.
func ExampleOptions_algorithms() {
	docs := [][]string{
		{"a", "b", "c", "d"},
		{"a", "b", "c", "e"},
	}
	for _, algo := range []fsjoin.Algorithm{fsjoin.FSJoin, fsjoin.RIDPairsPPJoin, fsjoin.VSmartJoin} {
		res, err := fsjoin.SelfJoinSets(docs, fsjoin.Options{Threshold: 0.5, Algorithm: algo})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d pair(s)\n", algo, len(res.Pairs))
	}
	// Output:
	// fs-join: 1 pair(s)
	// ridpairs-ppjoin: 1 pair(s)
	// v-smart-join: 1 pair(s)
}
