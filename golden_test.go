package fsjoin

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The golden fixture pins the exact result set of a committed corpus so
// any regression — a changed pair, a drifted similarity score, a float
// formatting change — shows up as a readable diff against
// testdata/golden/pairs.txt. Regenerate with:
//
//	go test -run TestGolden -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from a reference run")

const (
	goldenTexts = "testdata/golden/texts.txt"
	goldenPairs = "testdata/golden/pairs.txt"
	goldenTheta = 0.7
)

// formatSim renders a similarity with full round-trip precision; golden
// comparison is on this exact string, i.e. bit-equality of the float.
func formatSim(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) }

func formatPairs(pairs []Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = fmt.Sprintf("%d %d %d %s", p.A, p.B, p.Common, formatSim(p.Similarity))
	}
	return out
}

func loadGolden(t *testing.T) (texts, pairs []string) {
	t.Helper()
	if *updateGolden {
		writeGolden(t)
	}
	raw, err := os.ReadFile(goldenTexts)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	texts = strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	raw, err = os.ReadFile(goldenPairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			pairs = append(pairs, line)
		}
	}
	return texts, pairs
}

// writeGolden regenerates both fixture files: the corpus (only if absent,
// so the committed dataset stays stable) and the expected pairs from a
// sequential fault-free FS-Join reference run.
func writeGolden(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenTexts), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(goldenTexts); os.IsNotExist(err) {
		texts := corpus(48, 3)
		if err := os.WriteFile(goldenTexts, []byte(strings.Join(texts, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenTexts)
	if err != nil {
		t.Fatal(err)
	}
	texts := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	res, err := SelfJoinStrings(texts, Options{Threshold: goldenTheta, LocalParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) < 10 {
		t.Fatalf("reference run found only %d pairs — fixture too sparse to pin anything", len(res.Pairs))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# fs-join self-join golden pairs: theta=%v, word tokens, one \"A B Common Sim\" per line\n", goldenTheta)
	for _, line := range formatPairs(res.Pairs) {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(goldenPairs, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func diffPairs(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, golden has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %q, golden %q", label, i, got[i], want[i])
		}
	}
}

// TestGoldenAllAlgorithms runs every exact algorithm at several
// parallelism levels against the committed fixture. Scores are compared
// as full-precision strings, so all implementations must agree bit-for-bit.
func TestGoldenAllAlgorithms(t *testing.T) {
	texts, want := loadGolden(t)
	for _, algo := range []Algorithm{
		FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, MassJoinMerge, MassJoinMergeLight,
	} {
		for _, par := range []int{1, 4, 0} {
			res, err := SelfJoinStrings(texts, Options{
				Threshold: goldenTheta, Algorithm: algo, LocalParallelism: par,
			})
			if err != nil {
				t.Fatalf("%v par %d: %v", algo, par, err)
			}
			diffPairs(t, fmt.Sprintf("%v par %d", algo, par), formatPairs(res.Pairs), want)
		}
	}
}

// TestGoldenMemoryBudgets: every exact algorithm, run through the
// spillable shuffle at tiny budgets, must reproduce the golden pairs
// bit-for-bit — same pairs, same counts, same full-precision scores — at
// parallelism 1 and 4, leaving no spill files behind. (The committed
// corpus is small; TestBudgetEquivalenceLargeCorpus is the companion that
// forces real spilling.)
func TestGoldenMemoryBudgets(t *testing.T) {
	texts, want := loadGolden(t)
	budgets := []int64{-1, 64 << 10, 4 << 10} // unbounded, 64 KiB, 4 KiB
	for _, algo := range []Algorithm{
		FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, MassJoinMerge, MassJoinMergeLight,
	} {
		for _, budget := range budgets {
			for _, par := range []int{1, 4} {
				dir := t.TempDir()
				res, err := SelfJoinStrings(texts, Options{
					Threshold: goldenTheta, Algorithm: algo, LocalParallelism: par,
					MemoryBudget: budget, SpillDir: dir,
				})
				label := fmt.Sprintf("%v budget %d par %d", algo, budget, par)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				diffPairs(t, label, formatPairs(res.Pairs), want)
				if budget < 0 && res.Stats.SpillRuns != 0 {
					t.Fatalf("%s: unbounded run reported %d spill runs", label, res.Stats.SpillRuns)
				}
				if res.Stats.SpillRuns > 0 && res.Stats.SpillBytes == 0 {
					t.Fatalf("%s: spill runs without spill bytes", label)
				}
				if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
					t.Fatalf("%s: spill files leaked: %v (err %v)", label, ents, err)
				}
			}
		}
	}
}

// TestBudgetEquivalenceLargeCorpus forces the out-of-core path for real: a
// corpus big enough that a small budget writes multiple sorted runs, for
// every exact algorithm and join method, compared bit-for-bit against the
// unbounded reference at parallelism 1 and 4. The 1 KiB budget is chosen
// to bind for every algorithm, including the shuffle-light ones.
func TestBudgetEquivalenceLargeCorpus(t *testing.T) {
	texts := corpus(400, 11)
	const theta = 0.7
	check := func(label string, opt Options) {
		t.Helper()
		ref, err := SelfJoinStrings(texts, Options{
			Threshold: theta, Algorithm: opt.Algorithm, JoinMethod: opt.JoinMethod,
			LocalParallelism: 1,
		})
		if err != nil {
			t.Fatalf("%s reference: %v", label, err)
		}
		want := formatPairs(ref.Pairs)
		if len(want) == 0 {
			t.Fatalf("%s: reference found no pairs — corpus too sparse to test anything", label)
		}
		for _, par := range []int{1, 4} {
			dir := t.TempDir()
			opt.Threshold = theta
			opt.LocalParallelism = par
			opt.MemoryBudget = 1 << 10
			opt.SpillDir = dir
			res, err := SelfJoinStrings(texts, opt)
			if err != nil {
				t.Fatalf("%s par %d: %v", label, par, err)
			}
			diffPairs(t, fmt.Sprintf("%s par %d", label, par), formatPairs(res.Pairs), want)
			if res.Stats.SpillRuns < 2 {
				t.Fatalf("%s par %d: only %d spill runs — budget not binding", label, par, res.Stats.SpillRuns)
			}
			if res.Stats.ShufflePeakBytes == 0 {
				t.Fatalf("%s par %d: no shuffle peak recorded", label, par)
			}
			if res.Stats.ShuffleRecords != ref.Stats.ShuffleRecords ||
				res.Stats.ShuffleBytes != ref.Stats.ShuffleBytes {
				t.Fatalf("%s par %d: shuffle accounting drifted: (%d,%d) vs (%d,%d)",
					label, par, res.Stats.ShuffleRecords, res.Stats.ShuffleBytes,
					ref.Stats.ShuffleRecords, ref.Stats.ShuffleBytes)
			}
			if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
				t.Fatalf("%s par %d: spill files leaked: %v (err %v)", label, par, ents, err)
			}
		}
	}
	for _, algo := range []Algorithm{
		FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, MassJoinMerge, MassJoinMergeLight,
	} {
		check(algo.String(), Options{Algorithm: algo})
	}
	for _, jm := range []JoinMethod{IndexJoin, LoopJoin} { // PrefixJoin covered above
		check(fmt.Sprintf("fs-join method %d", jm), Options{JoinMethod: jm})
	}
}

// TestGoldenJoinMethods covers FS-Join's three fragment-join kernels —
// all must reproduce the golden pairs exactly.
func TestGoldenJoinMethods(t *testing.T) {
	texts, want := loadGolden(t)
	for _, jm := range []JoinMethod{PrefixJoin, IndexJoin, LoopJoin} {
		for _, par := range []int{1, 4} {
			res, err := SelfJoinStrings(texts, Options{
				Threshold: goldenTheta, JoinMethod: jm, LocalParallelism: par,
			})
			if err != nil {
				t.Fatalf("method %v par %d: %v", jm, par, err)
			}
			diffPairs(t, fmt.Sprintf("method %v par %d", jm, par), formatPairs(res.Pairs), want)
		}
	}
}

// TestGoldenApproxPrecision: the LSH join may miss pairs (recall follows
// the S-curve) but every pair it reports must appear in the golden set
// with an identical score — perfect precision.
func TestGoldenApproxPrecision(t *testing.T) {
	texts, want := loadGolden(t)
	golden := make(map[string]bool, len(want))
	for _, line := range want {
		golden[line] = true
	}
	res, err := SelfJoinStrings(texts, Options{
		Threshold: goldenTheta, Algorithm: ApproxLSHJoin, LocalParallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range formatPairs(res.Pairs) {
		if !golden[line] {
			t.Fatalf("approx join reported %q, not in the golden set", line)
		}
	}
	if len(res.Pairs) == 0 {
		t.Fatal("approx join found nothing — fixture defeats the S-curve entirely")
	}
}
