package fsjoin

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// servingCorpusOpts builds the mixed-algorithm chaos workload the serving
// acceptance criterion runs: n jobs over distinct seeded corpora, cycling
// algorithms and the chaos schedule matrix.
func servingCorpusOpts(n int) ([][]string, []Options) {
	algos := []Algorithm{FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, MassJoinMerge, MassJoinMergeLight}
	schedules := chaosSchedules(n)
	texts := make([][]string, n)
	opts := make([]Options, n)
	for i := 0; i < n; i++ {
		texts[i] = corpus(36+4*i, int64(1000+i))
		opts[i] = Options{
			Threshold: 0.7,
			Algorithm: algos[i%len(algos)],
			Nodes:     3,
			Fault:     schedules[i],
		}
	}
	return texts, opts
}

// detServingStats is the budget-independent statistic slice compared
// between serving and sequential runs (spill counters legitimately differ:
// the server imposes leases the direct run does not).
type detServingStats struct {
	ShuffleRecords, ShuffleBytes, Candidates int64
	LoadImbalance                            float64
}

func detServing(s Stats) detServingStats {
	return detServingStats{
		ShuffleRecords: s.ShuffleRecords, ShuffleBytes: s.ShuffleBytes,
		Candidates: s.Candidates, LoadImbalance: s.LoadImbalance,
	}
}

// TestServerServingEquivalence is the acceptance criterion: 10 concurrent
// jobs — mixed algorithms, chaos injection enabled, all leasing from one
// 64 KiB global memory pool — produce byte-identical result sets to the
// same jobs run sequentially and directly. Run under -race by make
// test-serve.
func TestServerServingEquivalence(t *testing.T) {
	const jobs = 10
	texts, opts := servingCorpusOpts(jobs)

	// Sequential baseline: direct calls, no server, no budget.
	want := make([]*Result, jobs)
	for i := 0; i < jobs; i++ {
		res, err := SelfJoinStrings(texts[i], opts[i])
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = res
	}

	srv, err := NewServer(ServerOptions{
		MemoryBudget:  64 << 10,
		MaxConcurrent: 4,
		MaxQueue:      jobs,
		SpillRoot:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	got := make([]*Result, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			coll := NewDictionary().NewTextCollection(texts[i])
			got[i], errs[i] = srv.Run(context.Background(), Job{
				Collection: coll,
				Options:    opts[i],
				Priority:   i % 3,
			})
		}(i)
	}
	wg.Wait()

	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("served job %d (%s): %v", i, opts[i].Algorithm, errs[i])
		}
		if !reflect.DeepEqual(got[i].Pairs, want[i].Pairs) {
			t.Fatalf("job %d (%s): served pairs differ from sequential (%d vs %d)",
				i, opts[i].Algorithm, len(got[i].Pairs), len(want[i].Pairs))
		}
		if g, w := detServing(got[i].Stats), detServing(want[i].Stats); g != w {
			t.Fatalf("job %d (%s): deterministic stats drifted\n got %+v\nwant %+v",
				i, opts[i].Algorithm, g, w)
		}
		if got[i].Stats.MemoryLease <= 0 {
			t.Fatalf("job %d: no memory lease recorded", i)
		}
	}
	st := srv.Stats()
	if st.Admitted != jobs || st.Completed != jobs || st.Failed != 0 {
		t.Fatalf("server stats = %+v, want %d admitted and completed", st, jobs)
	}
	if st.Running != 0 || st.MemoryInUse != 0 {
		t.Fatalf("pool not whole after all jobs returned: %+v", st)
	}
}

// TestServerDeadline pins the degradation contract's deadline clause: a
// job exceeding its deadline returns an error wrapping
// context.DeadlineExceeded, and the pool recovers its lease.
func TestServerDeadline(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 1 << 20, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	coll := NewDictionary().NewTextCollection(corpus(120, 5))
	_, err = srv.Run(context.Background(), Job{
		Collection: coll,
		Options:    Options{Threshold: 0.7, Nodes: 3},
		Deadline:   time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if st := srv.Stats(); st.MemoryInUse != 0 || st.Failed != 1 {
		t.Fatalf("stats after deadline = %+v", st)
	}
}

// blockingJob submits a job whose execution parks on the returned channel,
// holding its slot and lease until the channel is closed.
func blockingJob(t *testing.T, srv *Server, done *sync.WaitGroup) (release func()) {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	coll := NewDictionary().NewTextCollection(corpus(10, 3))
	done.Add(1)
	go func() {
		defer done.Done()
		_, err := srv.Run(context.Background(), Job{
			Collection:     coll,
			Options:        Options{Threshold: 0.7, Nodes: 2},
			testHookPreRun: func() { close(started); <-block },
		})
		if err != nil {
			t.Errorf("blocking job failed: %v", err)
		}
	}()
	<-started
	return func() { close(block) }
}

// TestServerLoadShedding pins the shed clauses: an impossible lease and a
// full queue both return ErrOverloaded, and a bounded queue wait returns
// ErrQueueTimeout — all without starting work.
func TestServerLoadShedding(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 1 << 16, MaxConcurrent: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	coll := NewDictionary().NewTextCollection(corpus(10, 4))

	if _, err := srv.Run(context.Background(), Job{
		Collection:  coll,
		Options:     Options{Threshold: 0.7},
		MemoryLease: 1 << 20, // exceeds the whole pool
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized lease: err = %v, want ErrOverloaded", err)
	}

	var running sync.WaitGroup
	release := blockingJob(t, srv, &running)
	// Queue disabled: anything not admitted immediately is shed.
	if _, err := srv.Run(context.Background(), Job{
		Collection: coll, Options: Options{Threshold: 0.7},
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	release()
	running.Wait()

	if st := srv.Stats(); st.Shed != 2 {
		t.Fatalf("shed = %d, want 2", st.Shed)
	}
}

// TestServerQueueTimeout bounds the admission wait.
func TestServerQueueTimeout(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 1 << 16, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	var running sync.WaitGroup
	release := blockingJob(t, srv, &running)
	coll := NewDictionary().NewTextCollection(corpus(10, 5))
	if _, err := srv.Run(context.Background(), Job{
		Collection:   coll,
		Options:      Options{Threshold: 0.7},
		QueueTimeout: 2 * time.Millisecond,
	}); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	release()
	running.Wait()
	if st := srv.Stats(); st.TimedOut != 1 {
		t.Fatalf("timed out = %d, want 1", st.TimedOut)
	}
}

// TestServerPanicIsolation pins the contract's isolation clause: a
// panicking job returns *JobError while a sibling running at the same time
// completes normally.
func TestServerPanicIsolation(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 1 << 20, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	texts := corpus(60, 21)
	opts := Options{Threshold: 0.7, Nodes: 3}
	want, err := SelfJoinStrings(texts, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var panicErr, siblingErr error
	var siblingRes *Result
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, panicErr = srv.Run(context.Background(), Job{
			Collection:     NewDictionary().NewTextCollection(texts),
			Options:        opts,
			Key:            "exploder",
			testHookPreRun: func() { panic("synthetic job crash") },
		})
	}()
	go func() {
		defer wg.Done()
		siblingRes, siblingErr = srv.Run(context.Background(), Job{
			Collection: NewDictionary().NewTextCollection(texts),
			Options:    opts,
		})
	}()
	wg.Wait()

	var je *JobError
	if !errors.As(panicErr, &je) {
		t.Fatalf("panicking job err = %v, want *JobError", panicErr)
	}
	if je.Job != "exploder" || je.Value != "synthetic job crash" || len(je.Stack) == 0 {
		t.Fatalf("JobError = {Job:%q Value:%v stack:%dB}", je.Job, je.Value, len(je.Stack))
	}
	if siblingErr != nil {
		t.Fatalf("sibling failed: %v", siblingErr)
	}
	if !reflect.DeepEqual(siblingRes.Pairs, want.Pairs) {
		t.Fatal("sibling results perturbed by the panicking job")
	}
	st := srv.Stats()
	if st.Panicked != 1 || st.Completed != 1 || st.MemoryInUse != 0 {
		t.Fatalf("stats = %+v, want 1 panicked, 1 completed, whole pool", st)
	}
}

// TestServerShutdownDrainsAndSweeps pins the drain contract: after
// Shutdown, queued jobs were rejected with ErrServerClosed, new jobs are
// too, and no spill or checkpoint temp files remain (durable checkpoints
// survive).
func TestServerShutdownDrainsAndSweeps(t *testing.T) {
	spillRoot, ckptRoot := t.TempDir(), t.TempDir()
	srv, err := NewServer(ServerOptions{
		MemoryBudget:   8 << 10,
		MaxConcurrent:  1,
		SpillRoot:      spillRoot,
		CheckpointRoot: ckptRoot,
	})
	if err != nil {
		t.Fatal(err)
	}
	texts := corpus(60, 33)
	opts := Options{Threshold: 0.7, Nodes: 3}

	// A keyed job that spills (tiny lease) and checkpoints.
	if _, err := srv.Run(context.Background(), Job{
		Collection:  NewDictionary().NewTextCollection(texts),
		Options:     opts,
		Key:         "durable-one",
		MemoryLease: 2 << 10,
	}); err != nil {
		t.Fatalf("keyed job: %v", err)
	}

	// Park a job on the only slot, queue another behind it, then shut
	// down: the queued one must be rejected closed, the running one must
	// finish.
	var running sync.WaitGroup
	release := blockingJob(t, srv, &running)
	queuedErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background(), Job{
			Collection: NewDictionary().NewTextCollection(texts),
			Options:    opts,
		})
		queuedErr <- err
	}()
	for srv.Stats().Queued == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// Plant a stray checkpoint temp file, as a writer killed mid-save
	// would leave.
	stray := filepath.Join(ckptRoot, "durable-one", ".tmp-ckpt-stray")
	if err := os.WriteFile(stray, []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	if err := <-queuedErr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("queued job err = %v, want ErrServerClosed", err)
	}
	release()
	running.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if _, err := srv.Run(context.Background(), Job{
		Collection: NewDictionary().NewTextCollection(texts),
		Options:    opts,
	}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-shutdown job err = %v, want ErrServerClosed", err)
	}

	// Sweep contract: no spill dirs, no checkpoint temps; durable
	// checkpoints still present.
	if ents, _ := os.ReadDir(spillRoot); len(ents) != 0 {
		t.Fatalf("spill root not swept: %v", names(ents))
	}
	durable := 0
	filepath.WalkDir(ckptRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), ".tmp-ckpt-") {
			t.Errorf("checkpoint temp survived shutdown: %s", path)
		} else {
			durable++
		}
		return nil
	})
	if durable == 0 {
		t.Fatal("durable checkpoints were swept away")
	}

	// The surviving checkpoints replay on a fresh server with the same
	// key, input and options.
	srv2, err := NewServer(ServerOptions{
		MemoryBudget: 8 << 10, CheckpointRoot: ckptRoot, SpillRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	res, err := srv2.Run(context.Background(), Job{
		Collection:  NewDictionary().NewTextCollection(texts),
		Options:     opts,
		Key:         "durable-one",
		MemoryLease: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CheckpointHits == 0 {
		t.Fatalf("resubmitted keyed job replayed nothing: %+v", res.Stats)
	}
}

// TestServerShutdownCancelsRunning pins the impatient-drain path: once
// Shutdown's context expires, running jobs are cancelled mid-flight and
// return an error chaining to context.Canceled.
func TestServerShutdownCancelsRunning(t *testing.T) {
	srv, err := NewServer(ServerOptions{MemoryBudget: 1 << 20, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	coll := NewDictionary().NewTextCollection(corpus(600, 55))
	jobErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background(), Job{
			Collection: coll,
			Options:    Options{Threshold: 0.6, Nodes: 3},
		})
		jobErr <- err
	}()
	for srv.Stats().Running == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(expired); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-jobErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("running job err = %v, want context.Canceled", err)
	}
}

func names(ents []os.DirEntry) []string {
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.Name()
	}
	return out
}

// TestServerRSJoin: the R-S convenience entry goes through the same
// admission path as Run and matches the direct join exactly, rs counters
// included.
func TestServerRSJoin(t *testing.T) {
	texts := corpus(40, 17)
	dict := NewDictionary()
	r := dict.NewTextCollection(texts[:20])
	s := dict.NewTextCollection(texts[20:])
	opt := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	want, err := r.Join(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerOptions{MemoryBudget: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	got, err := srv.Join(context.Background(), r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatalf("served rs join differs: %d pairs vs %d", len(got.Pairs), len(want.Pairs))
	}
	if got.Stats.RSPairs != want.Stats.RSPairs || got.Stats.RSCandidates != want.Stats.RSCandidates {
		t.Fatalf("served rs counters differ: (%d,%d) vs (%d,%d)",
			got.Stats.RSCandidates, got.Stats.RSPairs,
			want.Stats.RSCandidates, want.Stats.RSPairs)
	}
}
