package fsjoin

import (
	"context"
	"errors"
	"testing"
)

// TestJoinMethodAndPivotSelectionMappings exercises every public enum value
// end-to-end: all combinations must produce the same (exact) results.
func TestJoinMethodAndPivotSelectionMappings(t *testing.T) {
	texts := corpus(70, 5)
	var want []Pair
	for _, jm := range []JoinMethod{PrefixJoin, IndexJoin, LoopJoin} {
		for _, ps := range []PivotSelection{EvenTF, EvenInterval, RandomPivots} {
			res, err := SelfJoinStrings(texts, Options{
				Threshold:      0.7,
				JoinMethod:     jm,
				PivotSelection: ps,
				Nodes:          3,
				Seed:           9,
			})
			if err != nil {
				t.Fatalf("jm=%d ps=%d: %v", jm, ps, err)
			}
			if want == nil {
				want = res.Pairs
				continue
			}
			if len(res.Pairs) != len(want) {
				t.Fatalf("jm=%d ps=%d: %d pairs, want %d", jm, ps, len(res.Pairs), len(want))
			}
			for i := range want {
				if res.Pairs[i] != want[i] {
					t.Fatalf("jm=%d ps=%d: pair %d = %+v, want %+v", jm, ps, i, res.Pairs[i], want[i])
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("no results — corpus too sparse")
	}
}

func TestFSJoinVMatchesFSJoin(t *testing.T) {
	texts := corpus(80, 6)
	a, err := SelfJoinStrings(texts, Options{Threshold: 0.75, Algorithm: FSJoin, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfJoinStrings(texts, Options{Threshold: 0.75, Algorithm: FSJoinV, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("fs %d pairs, fs-v %d", len(a.Pairs), len(b.Pairs))
	}
}

func TestStatsPopulatedPerAlgorithm(t *testing.T) {
	texts := corpus(60, 7)
	for _, algo := range []Algorithm{FSJoin, RIDPairsPPJoin, VSmartJoin, ApproxLSHJoin} {
		res, err := SelfJoinStrings(texts, Options{Threshold: 0.8, Algorithm: algo, Nodes: 3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Stats.SimulatedTime <= 0 {
			t.Errorf("%v: no simulated time", algo)
		}
		if res.Stats.ShuffleRecords <= 0 || res.Stats.ShuffleBytes <= 0 {
			t.Errorf("%v: shuffle accounting empty: %+v", algo, res.Stats)
		}
		if res.Stats.LoadImbalance < 1.0 {
			t.Errorf("%v: impossible imbalance %v", algo, res.Stats.LoadImbalance)
		}
	}
}

func TestNodesAffectSimulatedTime(t *testing.T) {
	texts := corpus(200, 8)
	small, err := SelfJoinStrings(texts, Options{Threshold: 0.8, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := SelfJoinStrings(texts, Options{Threshold: 0.8, Nodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	if big.Stats.SimulatedTime >= small.Stats.SimulatedTime {
		t.Fatalf("20 nodes (%v) not faster than 2 (%v)",
			big.Stats.SimulatedTime, small.Stats.SimulatedTime)
	}
}

func TestPairsSortedAndDeduplicated(t *testing.T) {
	texts := corpus(150, 9)
	res, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Pairs); i++ {
		prev, cur := res.Pairs[i-1], res.Pairs[i]
		if prev.A > cur.A || (prev.A == cur.A && prev.B >= cur.B) {
			t.Fatalf("pairs unsorted or duplicated at %d: %+v then %+v", i, prev, cur)
		}
	}
	for _, p := range res.Pairs {
		if p.A >= p.B {
			t.Fatalf("self-join pair not ordered: %+v", p)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SelfJoinStrings(corpus(50, 10), Options{Threshold: 0.8, Context: ctx, Nodes: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
