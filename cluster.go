package fsjoin

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fsjoin/internal/mapreduce"
)

// This file is the multi-process execution layer (DESIGN.md §15,
// README "Multi-process execution"): Options.Workers ≥ 2 re-executes the
// calling binary as that many supervised worker processes, shards the
// join's map and reduce tasks across them over the filesystem shuffle
// transport, and survives worker crashes by reassigning their leases.
// The model is SPMD — the driver and every worker deterministically
// replay the same pipeline, executing only leased tasks — so the result
// is byte-identical to the in-process run at any worker count and under
// any single-worker loss.

// Environment contract between a clustered driver and the worker
// processes it spawns. MaybeWorker reads these.
const (
	// envWorker marks a process as a spawned join worker.
	envWorker = "FSJOIN_WORKER"
	// envWorkerDir is the run's shared work directory (job spec, control
	// socket, shuffle frames).
	envWorkerDir = "FSJOIN_WORKER_DIR"
	// envWorkerID is the worker's integer id, 0-based.
	envWorkerID = "FSJOIN_WORKER_ID"
	// envKillAt, when set on a worker to "<boundary>:<n>" (boundary one of
	// map, handoff, reduce), SIGKILLs the worker at its n-th such boundary
	// — the recovery harness's crash injection.
	envKillAt = "FSJOIN_KILL_AT"
	// envKillWorker, when set on the DRIVER to "<worker>:<boundary>:<n>",
	// makes the next clustered join arm envKillAt on that one worker. It
	// lets harnesses (and the benchmark runner) inject a crash without an
	// API hook.
	envKillWorker = "FSJOIN_KILL_WORKER"
)

// wireJobFile is the job spec's file name inside the work directory.
const wireJobFile = "job.json"

// wireJob is the serialised join a clustered run ships to its workers:
// both relations as token strings plus every option that survives a
// process boundary. Driver and workers all rebuild their collections from
// this wire form (the driver deliberately re-encodes instead of reusing
// the caller's dictionary), so token-id assignment — a function of
// first-appearance order — agrees across processes by construction.
type wireJob struct {
	RS  bool        `json:"rs"` // R-S join (false: self-join, S ignored)
	R   [][]string  `json:"r"`
	S   [][]string  `json:"s,omitempty"`
	Opt wireOptions `json:"opt"`
}

// wireOptions is the serialisable subset of Options. Context,
// OnQuarantine, the test injector and CheckpointDir cannot cross a
// process boundary; runCluster rejects the ones that would change
// semantics and drops the rest.
type wireOptions struct {
	Threshold            float64       `json:"threshold"`
	Function             int           `json:"function"`
	Algorithm            int           `json:"algorithm"`
	VerticalPartitions   int           `json:"vertical_partitions,omitempty"`
	HorizontalPivots     int           `json:"horizontal_pivots,omitempty"`
	PivotSelection       int           `json:"pivot_selection,omitempty"`
	JoinMethod           int           `json:"join_method,omitempty"`
	BitmapFilter         int           `json:"bitmap_filter,omitempty"`
	BitmapWidth          int           `json:"bitmap_width,omitempty"`
	Nodes                int           `json:"nodes,omitempty"`
	Seed                 int64         `json:"seed,omitempty"`
	WorkBudget           int64         `json:"work_budget,omitempty"`
	LocalParallelism     int           `json:"local_parallelism,omitempty"`
	MemoryBudget         int64         `json:"memory_budget,omitempty"`
	SpillDir             string        `json:"spill_dir,omitempty"`
	MaxAttempts          int           `json:"max_attempts,omitempty"`
	RetryBackoffBase     time.Duration `json:"retry_backoff_base,omitempty"`
	ChaosSeed            int64         `json:"chaos_seed,omitempty"`
	ChaosIntensity       float64       `json:"chaos_intensity,omitempty"`
	ChaosTransportFaults bool          `json:"chaos_transport_faults,omitempty"`
	SkipBadRecords       bool          `json:"skip_bad_records,omitempty"`
	MaxSkippedRecords    int           `json:"max_skipped_records,omitempty"`
}

// toWire lowers Options onto the wire subset.
func toWire(o Options) wireOptions {
	return wireOptions{
		Threshold:            o.Threshold,
		Function:             int(o.Function),
		Algorithm:            int(o.Algorithm),
		VerticalPartitions:   o.VerticalPartitions,
		HorizontalPivots:     o.HorizontalPivots,
		PivotSelection:       int(o.PivotSelection),
		JoinMethod:           int(o.JoinMethod),
		BitmapFilter:         int(o.BitmapFilter),
		BitmapWidth:          o.BitmapWidth,
		Nodes:                o.Nodes,
		Seed:                 o.Seed,
		WorkBudget:           o.WorkBudget,
		LocalParallelism:     o.LocalParallelism,
		MemoryBudget:         o.MemoryBudget,
		SpillDir:             o.SpillDir,
		MaxAttempts:          o.Fault.MaxAttempts,
		RetryBackoffBase:     o.Fault.RetryBackoffBase,
		ChaosSeed:            o.Fault.ChaosSeed,
		ChaosIntensity:       o.Fault.ChaosIntensity,
		ChaosTransportFaults: o.Fault.ChaosTransportFaults,
		SkipBadRecords:       o.Fault.SkipBadRecords,
		MaxSkippedRecords:    o.Fault.MaxSkippedRecords,
	}
}

// options raises the wire subset back to Options. Speculative execution
// is deliberately absent: it is wall-clock-driven and the supervisor's
// lease reassignment already covers stragglers in clustered runs.
func (w wireOptions) options() Options {
	return Options{
		Threshold:          w.Threshold,
		Function:           Similarity(w.Function),
		Algorithm:          Algorithm(w.Algorithm),
		VerticalPartitions: w.VerticalPartitions,
		HorizontalPivots:   w.HorizontalPivots,
		PivotSelection:     PivotSelection(w.PivotSelection),
		JoinMethod:         JoinMethod(w.JoinMethod),
		BitmapFilter:       BitmapFilterMode(w.BitmapFilter),
		BitmapWidth:        w.BitmapWidth,
		Nodes:              w.Nodes,
		Seed:               w.Seed,
		WorkBudget:         w.WorkBudget,
		LocalParallelism:   w.LocalParallelism,
		MemoryBudget:       w.MemoryBudget,
		SpillDir:           w.SpillDir,
		Fault: FaultOptions{
			MaxAttempts:          w.MaxAttempts,
			RetryBackoffBase:     w.RetryBackoffBase,
			ChaosSeed:            w.ChaosSeed,
			ChaosIntensity:       w.ChaosIntensity,
			ChaosTransportFaults: w.ChaosTransportFaults,
			SkipBadRecords:       w.SkipBadRecords,
			MaxSkippedRecords:    w.MaxSkippedRecords,
		},
	}
}

// wireSets serialises a collection back to token strings, one sorted
// slice per record.
func wireSets(c *Collection) [][]string {
	out := make([][]string, 0, c.t.Len())
	for _, rec := range c.t.Records {
		set := make([]string, len(rec.Tokens))
		for i, id := range rec.Tokens {
			set[i] = c.c.d.Token(id)
		}
		out = append(out, set)
	}
	return out
}

// rebuild encodes the wire relations against one fresh dictionary —
// identically in every process.
func (w *wireJob) rebuild() (r, s *Collection) {
	d := NewDictionary()
	r = d.NewCollection(w.R)
	if w.RS {
		s = d.NewCollection(w.S)
	}
	return r, s
}

// MaybeWorker hands the process over to the clustered-join worker loop
// when it was spawned as one (FSJOIN_WORKER=1) and returns immediately
// otherwise. Binaries that run joins with Options.Workers ≥ 2 must call
// it first thing in main (or TestMain) — worker processes re-execute the
// same binary, and without the hand-off they would re-enter main.
func MaybeWorker() {
	if os.Getenv(envWorker) != "1" {
		return
	}
	if err := runWorker(); err != nil {
		fmt.Fprintf(os.Stderr, "fsjoin worker %s: %v\n", os.Getenv(envWorkerID), err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runWorker executes one worker process: load the job spec, join the
// supervisor, replay the pipeline executing leased tasks, leave.
func runWorker() error {
	dir := os.Getenv(envWorkerDir)
	id, err := strconv.Atoi(os.Getenv(envWorkerID))
	if err != nil {
		return fmt.Errorf("bad %s: %w", envWorkerID, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, wireJobFile))
	if err != nil {
		return err
	}
	var job wireJob
	if err := json.Unmarshal(data, &job); err != nil {
		return fmt.Errorf("job spec: %w", err)
	}
	client, err := mapreduce.DialWorker(mapreduce.ControlSocket(dir), id, os.Getenv(envKillAt))
	if err != nil {
		return err
	}
	opt := job.Opt.options()
	opt.runtime = mapreduce.Runtime{
		Transport: mapreduce.NewFSTransport(dir, true),
		Executor:  client,
	}
	r, s := job.rebuild()
	if job.RS {
		_, err = r.Join(s, opt)
	} else {
		_, err = r.SelfJoin(opt)
	}
	if err != nil {
		return err
	}
	client.Close()
	return nil
}

// clusterKillSpec parses the driver-side envKillWorker contract,
// returning the target worker and the spec to plant in its environment.
func clusterKillSpec() (worker int, killAt string, err error) {
	v := os.Getenv(envKillWorker)
	if v == "" {
		return -1, "", nil
	}
	i := strings.Index(v, ":")
	if i <= 0 {
		return 0, "", fmt.Errorf("fsjoin: %s=%q: want <worker>:<boundary>:<n>", envKillWorker, v)
	}
	w, err := strconv.Atoi(v[:i])
	if err != nil || w < 0 {
		return 0, "", fmt.Errorf("fsjoin: %s=%q: want <worker>:<boundary>:<n>", envKillWorker, v)
	}
	return w, v[i+1:], nil
}

// runCluster executes one join across opt.Workers supervised worker
// processes. The driver (this process) participates as a non-executing
// SPMD replica: it replays the pipeline for Result assembly while the
// workers do the task work.
func runCluster(r, s *Collection, opt Options) (*Result, error) {
	if opt.CheckpointDir != "" {
		return nil, errors.New("fsjoin: Workers > 1 is incompatible with CheckpointDir (checkpoint the single-process run instead)")
	}
	if opt.Fault.injector != nil {
		return nil, errors.New("fsjoin: Workers > 1 cannot carry a test fault injector across processes")
	}
	if opt.Fault.OnQuarantine != nil {
		return nil, errors.New("fsjoin: Workers > 1 cannot deliver OnQuarantine callbacks (tasks run in worker processes)")
	}
	if opt.Fault.SpeculativeDelay != 0 {
		return nil, errors.New("fsjoin: Workers > 1 replaces speculation with supervisor lease reassignment; unset SpeculativeDelay")
	}
	killWorker, killAt, err := clusterKillSpec()
	if err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fsjoin: cannot re-execute self: %w", err)
	}

	dir := opt.WorkDir
	ownDir := dir == ""
	if ownDir {
		dir, err = os.MkdirTemp("", "fsjoin-cluster-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	// The job spec every process (this one included) rebuilds from.
	job := wireJob{RS: s != nil, R: wireSets(r), Opt: toWire(opt)}
	if s != nil {
		job.S = wireSets(s)
	}
	data, err := json.Marshal(&job)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, wireJobFile), data, 0o644); err != nil {
		return nil, err
	}

	sup, err := mapreduce.StartSupervisor(mapreduce.SupervisorConfig{Dir: dir})
	if err != nil {
		return nil, err
	}
	defer sup.Close()

	workers := make([]*exec.Cmd, 0, opt.Workers)
	defer func() {
		for _, cmd := range workers {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			cmd.Wait()
		}
	}()
	for id := 0; id < opt.Workers; id++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envWorkerDir+"="+dir,
			envWorkerID+"="+strconv.Itoa(id),
			envKillWorker+"=", // never cascades
		)
		if id == killWorker {
			cmd.Env = append(cmd.Env, envKillAt+"="+killAt)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("fsjoin: spawning worker %d: %w", id, err)
		}
		workers = append(workers, cmd)
	}

	driver, err := mapreduce.DialWorker(sup.Addr(), mapreduce.DriverID, "")
	if err != nil {
		return nil, err
	}
	defer driver.Close()

	// The driver replays the identical pipeline over the rebuilt
	// collections; Workers is cleared so the nested call takes the normal
	// single-process path with the distributed runtime plugged in.
	opt2 := job.Opt.options()
	opt2.Context = opt.Context
	opt2.runtime = mapreduce.Runtime{
		Transport: mapreduce.NewFSTransport(dir, true),
		Executor:  driver,
	}
	rd, sd := job.rebuild()
	var res *Result
	if job.RS {
		res, err = rd.Join(sd, opt2)
	} else {
		res, err = rd.SelfJoin(opt2)
	}
	if err != nil {
		return nil, err
	}
	// Reap cleanly before reading counters so late heartbeats settle.
	for _, cmd := range workers {
		cmd.Wait()
	}
	workers = nil
	// The pipeline counters already carry chaos-injected delivery faults
	// (publish surfaced them); the supervisor adds the real supervision
	// activity on top.
	c := sup.Counters()
	res.Stats.Workers = opt.Workers
	res.Stats.TransportHeartbeats = c.Heartbeats
	res.Stats.WorkerDeaths = c.WorkerDeaths
	res.Stats.TasksReassigned += c.TasksReassigned
	res.Stats.PartitionsRedelivered += c.PartitionsRedelivered
	return res, nil
}
