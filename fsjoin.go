// Package fsjoin is a distributed set-similarity join library, a faithful
// reproduction of "Fast and Scalable Distributed Set Similarity Joins for
// Big Data Analytics" (Rong et al., ICDE 2017).
//
// The library finds all pairs of records from one collection (self-join) or
// two collections (R-S join) whose set similarity — Jaccard, Dice or Cosine
// — reaches a threshold θ. The primary algorithm is FS-Join: a three-phase,
// duplicate-free MapReduce pipeline built on vertical partitioning. The
// three baselines the paper compares against (RIDPairsPPJoin, V-Smart-Join,
// MassJoin) are included and share the same execution substrate, an
// in-process MapReduce engine with a cluster cost model.
//
// Quick start:
//
//	docs := [][]string{
//		{"set", "similarity", "join"},
//		{"set", "similarity", "joins"},
//		{"completely", "different", "tokens"},
//	}
//	res, err := fsjoin.SelfJoinSets(docs, fsjoin.Options{Threshold: 0.5})
//	// res.Pairs → [(0,1)]
package fsjoin

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"time"

	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
)

// Similarity selects the set-similarity function.
type Similarity int

// Supported similarity functions.
const (
	// Jaccard is |s∩t| / |s∪t| — the paper's primary function.
	Jaccard Similarity = iota
	// Dice is 2|s∩t| / (|s|+|t|).
	Dice
	// Cosine is |s∩t| / √(|s|·|t|).
	Cosine
)

func (s Similarity) internal() (similarity.Func, error) {
	switch s {
	case Jaccard:
		return similarity.Jaccard, nil
	case Dice:
		return similarity.Dice, nil
	case Cosine:
		return similarity.Cosine, nil
	default:
		return 0, fmt.Errorf("fsjoin: unknown similarity function %d", int(s))
	}
}

// Algorithm selects the join implementation.
type Algorithm int

// Supported algorithms. FSJoin is the paper's contribution and the default;
// the others are the evaluated baselines.
const (
	// FSJoin is the full algorithm: vertical + horizontal partitioning.
	FSJoin Algorithm = iota
	// FSJoinV disables horizontal partitioning (the paper's FS-Join-V).
	FSJoinV
	// RIDPairsPPJoin is the prefix-signature baseline of Vernica et al.
	RIDPairsPPJoin
	// VSmartJoin is the Online-Aggregation variant of Metwally et al.
	VSmartJoin
	// MassJoinMerge is Deng et al.'s MassJoin, Merge variant.
	MassJoinMerge
	// MassJoinMergeLight is MassJoin with the token-grouping light filter.
	MassJoinMergeLight
	// ApproxLSHJoin is the approximate MinHash/LSH join — the paper's
	// stated future-work extension. Results have perfect precision; recall
	// follows the LSH S-curve (near 1 well above the threshold). Jaccard
	// only.
	ApproxLSHJoin
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case FSJoin:
		return "fs-join"
	case FSJoinV:
		return "fs-join-v"
	case RIDPairsPPJoin:
		return "ridpairs-ppjoin"
	case VSmartJoin:
		return "v-smart-join"
	case MassJoinMerge:
		return "massjoin-merge"
	case MassJoinMergeLight:
		return "massjoin-merge+light"
	case ApproxLSHJoin:
		return "approx-lsh"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// PivotSelection selects how FS-Join chooses vertical pivots (Section IV).
type PivotSelection int

// Supported pivot-selection methods.
const (
	// EvenTF splits total term frequency evenly — the paper's choice,
	// with a load-balancing guarantee.
	EvenTF PivotSelection = iota
	// EvenInterval splits the token domain into equal-width rank ranges.
	EvenInterval
	// RandomPivots picks pivots uniformly at random.
	RandomPivots
)

func (p PivotSelection) internal() partition.PivotMethod {
	switch p {
	case EvenInterval:
		return partition.EvenInterval
	case RandomPivots:
		return partition.Random
	default:
		return partition.EvenTF
	}
}

// JoinMethod selects FS-Join's within-fragment join kernel (Section V-A).
type JoinMethod int

// Supported join kernels.
const (
	// PrefixJoin indexes lossless segment prefixes — the paper's choice.
	PrefixJoin JoinMethod = iota
	// IndexJoin builds inverted lists over all segment tokens.
	IndexJoin
	// LoopJoin compares all qualifying segment pairs.
	LoopJoin
)

func (j JoinMethod) internal() fragjoin.Method {
	switch j {
	case IndexJoin:
		return fragjoin.Index
	case LoopJoin:
		return fragjoin.Loop
	default:
		return fragjoin.Prefix
	}
}

// BitmapFilterMode selects how the bitmap signature filter (DESIGN.md §11)
// is applied: per-record/segment fixed-width hashed token bitmaps whose
// XOR+popcount overlap upper bound rejects candidate pairs before any
// exact intersection or verification. The filter is exact — join results
// are byte-identical in every mode; only the amount of exact work (and the
// Stats.Bitmap* counters) changes.
type BitmapFilterMode int

// Supported bitmap filter modes.
const (
	// BitmapAuto (the default) enables the filter with its width chosen
	// from length statistics, and honours the FSJOIN_BITMAP ("on"/"off")
	// and FSJOIN_BITMAP_WIDTH (64/128/256) environment overrides.
	BitmapAuto BitmapFilterMode = iota
	// BitmapOn forces the filter on, ignoring the environment.
	BitmapOn
	// BitmapOff disables the filter, ignoring the environment.
	BitmapOff
)

// String implements fmt.Stringer.
func (m BitmapFilterMode) String() string {
	switch m {
	case BitmapAuto:
		return "auto"
	case BitmapOn:
		return "on"
	case BitmapOff:
		return "off"
	default:
		return fmt.Sprintf("BitmapFilterMode(%d)", int(m))
	}
}

func (m BitmapFilterMode) internal() filters.BitmapMode {
	switch m {
	case BitmapOn:
		return filters.BitmapOn
	case BitmapOff:
		return filters.BitmapOff
	default:
		return filters.BitmapAuto
	}
}

// Options configures a join.
type Options struct {
	// Threshold is the similarity threshold θ in (0, 1]. Required.
	Threshold float64
	// Function is the similarity function (default Jaccard).
	Function Similarity
	// Algorithm is the join implementation (default FSJoin).
	Algorithm Algorithm
	// VerticalPartitions is FS-Join's fragment count (default 3 × nodes).
	VerticalPartitions int
	// HorizontalPivots is FS-Join's length-pivot count t, yielding 2t+1
	// horizontal partitions (default 0 for FSJoinV; 10 for FSJoin).
	HorizontalPivots int
	// PivotSelection is FS-Join's vertical pivot strategy (default
	// EvenTF).
	PivotSelection PivotSelection
	// JoinMethod is FS-Join's fragment join kernel (default PrefixJoin).
	JoinMethod JoinMethod
	// BitmapFilter toggles the bitmap signature filter (default BitmapAuto:
	// on, width from length statistics). Applied by every FS-Join kernel
	// before exact intersections and by RIDPairsPPJoin before verification;
	// results are byte-identical in every mode.
	BitmapFilter BitmapFilterMode
	// BitmapWidth pins the signature width in bits (64, 128 or 256);
	// 0 (the default) picks it per fragment/group from length statistics.
	BitmapWidth int
	// Nodes is the simulated cluster size (default 10, the paper's).
	Nodes int
	// Seed drives RandomPivots.
	Seed int64
	// WorkBudget caps intermediate-record generation for the V-Smart-Join
	// and MassJoin baselines (they blow up on large inputs, as the paper
	// reports); 0 means unlimited.
	WorkBudget int64
	// Context, when non-nil, cancels the join at the next task boundary
	// with the context's error.
	Context context.Context
	// LocalParallelism is the number of simulated tasks run concurrently on
	// the local machine, for every algorithm. 0 (the default) uses one
	// worker per CPU core; 1 forces sequential execution, which gives the
	// most faithful simulated-time measurements; larger values cap the
	// worker pool. Results, counters and shuffle metrics are identical at
	// every setting — only wall-clock time changes.
	LocalParallelism int
	// Fault configures task-level fault tolerance (retry budget, backoff,
	// speculative execution) and, for testing, seeded fault injection for
	// every algorithm. The zero value keeps Hadoop-style defaults and
	// injects nothing.
	Fault FaultOptions
	// MemoryBudget caps each simulated map task's in-memory shuffle buffer,
	// in bytes. Records beyond the budget spill to sorted runs in temp
	// files and are merged back at reduce time, so joins over data larger
	// than RAM complete instead of exhausting memory. Results are
	// byte-identical at any budget; only Stats.SpillRuns/SpillBytes and
	// wall-clock time change. 0 (the default) defers to the
	// FSJOIN_MEMORY_BUDGET environment variable (unbounded when unset);
	// a negative value forces unbounded buffering.
	MemoryBudget int64
	// SpillDir is the parent directory for spill files; "" uses the OS
	// temp dir. Each join creates and removes its own subdirectories.
	SpillDir string
	// CheckpointDir, when non-empty, makes the join durable: after every
	// MapReduce stage completes, its output, counters and metrics are
	// atomically persisted there, and a later run with the same options
	// and input replays finished stages from disk byte-identically instead
	// of re-executing them — crash/restart recovery for long pipelines.
	// Stage checkpoints are keyed by a fingerprint over the options and
	// the stage's full input content, so stale or corrupt checkpoints
	// (changed data, changed options, damaged files) are detected and
	// recomputed, never trusted. The directory is created if missing;
	// Stats.CheckpointHits/CheckpointMisses report the replay activity.
	// Directories must not be reused across library versions.
	CheckpointDir string
	// Workers, when ≥ 2, runs the join across that many supervised worker
	// processes (the calling binary re-executed; main or TestMain must
	// call MaybeWorker first). Map and reduce tasks are sharded across the
	// workers over the filesystem shuffle transport; a crashed or stalled
	// worker's tasks are reassigned to survivors and the join completes
	// with byte-identical results. Stats.Workers and the Stats transport
	// counters report the run. Incompatible with CheckpointDir,
	// Fault.OnQuarantine and Fault.SpeculativeDelay; 0 or 1 is the normal
	// in-process execution.
	Workers int
	// WorkDir is the shared directory for a Workers ≥ 2 run (job spec,
	// control socket, shuffle frames); "" creates and removes a temporary
	// one. The caller owns a non-empty WorkDir.
	WorkDir string
	// FileShuffle routes the map→reduce hand-off through the filesystem
	// shuffle transport (CRC-validated spill-codec frames in a temporary
	// directory) even for a single-process run. Results are byte-identical
	// to the in-memory shuffle; useful for validating the transport and
	// for bounding shuffle memory beyond MemoryBudget. Implied by
	// Workers ≥ 2.
	FileShuffle bool

	// runtime carries the resolved execution substrate (transport +
	// executor) into the algorithm pipelines. Worker processes and the
	// clustered driver set it; user code never does.
	runtime mapreduce.Runtime
}

// FaultOptions is the public face of the engine's fault model (DESIGN.md
// §7): how failing or straggling tasks are retried, and — for chaos
// testing — a seeded, reproducible fault schedule injected into every
// MapReduce task attempt. Under any schedule a join either returns output
// identical to the fault-free run or an error; results are never silently
// perturbed.
type FaultOptions struct {
	// MaxAttempts is the per-task attempt budget; 0 means 4, Hadoop's
	// default.
	MaxAttempts int
	// RetryBackoffBase enables exponential backoff between task retries
	// (base, doubling, capped at 8× base); 0 disables backoff.
	RetryBackoffBase time.Duration
	// SpeculativeDelay launches a backup copy of any task attempt still
	// running after this duration and keeps the first copy to finish
	// (straggler mitigation); 0 disables speculation.
	SpeculativeDelay time.Duration
	// ChaosSeed, when non-zero, injects a reproducible schedule of task
	// panics, transient errors, emit-phase failures and straggler delays
	// derived from the seed into every task attempt of every job. Two runs
	// with the same seed (and options) inject identical schedules.
	ChaosSeed int64
	// ChaosIntensity is the fraction of (phase, task) pairs the schedule
	// targets; 0 means 0.3. Meaningful only with ChaosSeed set.
	ChaosIntensity float64
	// ChaosTransportFaults mixes the transport fault kinds into the
	// ChaosSeed schedule: worker-loss reassignments and duplicate partition
	// deliveries injected at the map→reduce hand-off, exercising the
	// idempotent-delivery contract (Stats.TasksReassigned and
	// Stats.PartitionsRedelivered record them). Results remain
	// byte-identical under any schedule. Meaningful only with ChaosSeed
	// set.
	ChaosTransportFaults bool
	// SkipBadRecords enables Hadoop-style skip mode: when a task exhausts
	// its attempts on the same deterministic panic, the engine bisects to
	// the poison input record, quarantines it (Stats.RecordsSkipped, the
	// OnQuarantine sink) and re-runs the task without it, so one bad
	// record does not abort a million-record join. A skipped record's
	// contribution is missing from the result — pairs involving it may be
	// absent — which is the point: a degraded answer instead of none.
	SkipBadRecords bool
	// MaxSkippedRecords bounds quarantined records per job before the join
	// aborts anyway (systematic failure is a bug, not a poison record);
	// 0 means 16.
	MaxSkippedRecords int
	// OnQuarantine, when non-nil, receives every quarantined record.
	// Calls are serialised by the engine.
	OnQuarantine func(QuarantinedRecord)

	// injector lets in-package tests schedule precise faults (including
	// poison records) without widening the public API.
	injector mapreduce.Injector
}

// QuarantinedRecord identifies one input record (map side) or key group
// (reduce side) that skip mode removed from a job.
type QuarantinedRecord struct {
	// Job names the MapReduce stage the record poisoned (e.g.
	// "filtering").
	Job string
	// Phase is "map" for an input record, "reduce" for a key group.
	Phase string
	// Task is the task index within the phase.
	Task int
	// Key is the record's engine key — the algorithms use big-endian
	// binary record/token ids, so treat it as opaque bytes.
	Key string
	// Err is the deterministic failure the record produced.
	Err string
}

// faultPolicy lowers the public knobs onto the engine policy.
func (o Options) faultPolicy() mapreduce.FaultPolicy {
	f := o.Fault
	fp := mapreduce.FaultPolicy{
		MaxAttempts:      f.MaxAttempts,
		SpeculativeDelay: f.SpeculativeDelay,
	}
	if f.RetryBackoffBase > 0 {
		fp.Backoff = mapreduce.ExponentialBackoff(f.RetryBackoffBase, 8*f.RetryBackoffBase)
	}
	if f.ChaosSeed != 0 {
		pc := mapreduce.PlanConfig{
			Seed:       f.ChaosSeed,
			TargetRate: f.ChaosIntensity,
		}
		if f.ChaosTransportFaults {
			pc.Kinds = []mapreduce.FaultKind{
				mapreduce.FaultPanic, mapreduce.FaultEmitPanic,
				mapreduce.FaultError, mapreduce.FaultDelay,
				mapreduce.FaultWorkerLoss, mapreduce.FaultRedeliver,
			}
		}
		fp.Injector = mapreduce.NewSeededPlan(pc)
	}
	if f.injector != nil {
		fp.Injector = f.injector
	}
	fp.SkipBadRecords = f.SkipBadRecords
	fp.MaxSkippedRecords = f.MaxSkippedRecords
	if sink := f.OnQuarantine; sink != nil {
		fp.Quarantine = func(r mapreduce.QuarantinedRecord) {
			sink(QuarantinedRecord{
				Job: r.Job, Phase: r.Phase.String(), Task: r.Task,
				Key: r.Key, Err: r.Err,
			})
		}
	}
	return fp
}

// checkpointSalt folds every option that changes a stage's semantics into
// the checkpoint fingerprints, so a checkpoint directory reused with
// different options recomputes instead of replaying mismatched state.
// Execution-only knobs (parallelism, memory budget, fault tolerance) are
// deliberately excluded: output is byte-identical across them, so their
// checkpoints are interchangeable.
func (o Options) checkpointSalt() string {
	if o.CheckpointDir == "" {
		return ""
	}
	return fmt.Sprintf("fsjoin/v1|fn=%d|algo=%d|theta=%s|vp=%d|hp=%d|pivot=%d|join=%d|nodes=%d|seed=%d|work=%d",
		o.Function, o.Algorithm, strconv.FormatFloat(o.Threshold, 'g', -1, 64),
		o.VerticalPartitions, o.HorizontalPivots, o.PivotSelection, o.JoinMethod,
		o.Nodes, o.Seed, o.WorkBudget)
}

// bitmapConfig lowers the public bitmap knobs onto the filter config.
func (o Options) bitmapConfig() (filters.BitmapConfig, error) {
	cfg := filters.BitmapConfig{Mode: o.BitmapFilter.internal(), Width: o.BitmapWidth}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("fsjoin: BitmapWidth %d (want 0, 64, 128 or 256)", o.BitmapWidth)
	}
	return cfg, nil
}

func (o Options) cluster() *mapreduce.Cluster {
	cl := mapreduce.DefaultCluster()
	if o.Nodes > 0 {
		cl.Nodes = o.Nodes
	}
	return cl
}

// resolveTransport realises Options.FileShuffle for an in-process run:
// the shuffle goes through CRC-validated frames in a fresh temporary
// directory, removed by the returned cleanup.
func (o *Options) resolveTransport() (func(), error) {
	if !o.FileShuffle || o.runtime.Transport != nil {
		return func() {}, nil
	}
	dir, err := os.MkdirTemp(o.SpillDir, "fsjoin-shuffle-")
	if err != nil {
		return nil, fmt.Errorf("fsjoin: FileShuffle: %w", err)
	}
	o.runtime.Transport = mapreduce.NewFSTransport(dir, false)
	return func() { os.RemoveAll(dir) }, nil
}

// localParallelism resolves Options.LocalParallelism for the engine: the
// zero value selects one worker per core (mapreduce.AutoParallelism).
func (o Options) localParallelism() int {
	if o.LocalParallelism == 0 {
		return mapreduce.AutoParallelism
	}
	return o.LocalParallelism
}

// Pair is one join result.
type Pair struct {
	// A and B are record indices into the input collection(s): A < B for
	// self-joins; A indexes R and B indexes S for R-S joins.
	A, B int
	// Common is the number of shared tokens.
	Common int
	// Similarity is the exact similarity score.
	Similarity float64
}

// Stats summarises the simulated distributed execution.
type Stats struct {
	// SimulatedTime is the modelled end-to-end cluster makespan.
	SimulatedTime time.Duration
	// ShuffleRecords and ShuffleBytes total the data moved between map and
	// reduce tasks across all jobs.
	ShuffleRecords int64
	ShuffleBytes   int64
	// LoadImbalance is the worst per-reducer max/mean shuffle-byte ratio
	// across jobs (1.0 = perfectly balanced).
	LoadImbalance float64
	// Candidates is the number of candidate-pair records generated before
	// verification.
	Candidates int64
	// BitmapBuilt, BitmapRejected and BitmapPassed report the bitmap
	// signature filter's activity (Options.BitmapFilter): signatures built,
	// candidate pairs rejected by the popcount bound before exact work, and
	// pairs that survived it. All zero when the filter is off.
	BitmapBuilt    int64
	BitmapRejected int64
	BitmapPassed   int64
	// VerifiedCandidates counts candidate pairs that reached exact
	// verification — the quantity the bitmap filter cuts for
	// RIDPairsPPJoin (FS-Join's verification input is already exact and
	// unchanged by the filter).
	VerifiedCandidates int64
	// SpillRuns and SpillBytes total the sorted runs (and their accounted
	// bytes) the out-of-core shuffle wrote under Options.MemoryBudget;
	// both are zero when no budget is active or nothing spilled.
	SpillRuns  int64
	SpillBytes int64
	// ShufflePeakBytes is the largest in-memory shuffle buffer any map
	// task held, recorded only under an active memory budget.
	ShufflePeakBytes int64
	// RecordsSkipped counts input records and key groups quarantined under
	// Fault.SkipBadRecords across all stages; always zero when skip mode
	// is off.
	RecordsSkipped int64
	// CheckpointHits and CheckpointMisses count pipeline stages replayed
	// from, respectively executed and persisted to, Options.CheckpointDir;
	// both are zero when checkpointing is off.
	CheckpointHits   int64
	CheckpointMisses int64
	// RSCandidates and RSPairs report R-S join activity at the final
	// verifying stage (the rs.pairs.* counters): cross-relation pairs it
	// examined and pairs that passed the threshold. For RIDPairsPPJoin both
	// count per prefix group, before the dedup stage, so RSPairs may exceed
	// len(Result.Pairs) there. Always zero for self-joins.
	RSCandidates int64
	RSPairs      int64
	// Workers is the worker-process count of a clustered run
	// (Options.Workers ≥ 2); zero for in-process execution.
	Workers int
	// TransportHeartbeats, WorkerDeaths, TasksReassigned and
	// PartitionsRedelivered report a clustered run's supervision activity:
	// heartbeats received, workers declared dead (crash or heartbeat
	// timeout), task leases reassigned from dead or stalled workers, and
	// partition deliveries that duplicated an already-committed generation
	// (idempotent redelivery). All zero for in-process runs without
	// injected transport faults.
	TransportHeartbeats   int64
	WorkerDeaths          int64
	TasksReassigned       int64
	PartitionsRedelivered int64
	// QueueWait is how long the job waited for admission when run through
	// a Server (zero for direct Join/SelfJoin calls, or when admitted
	// immediately).
	QueueWait time.Duration
	// MemoryLease is the memory, in bytes, the job leased from its
	// Server's global pool; zero for direct calls.
	MemoryLease int64
}

// Result is a completed join.
type Result struct {
	// Pairs holds all similar pairs, sorted by (A, B).
	Pairs []Pair
	// Stats summarises the simulated distributed execution.
	Stats Stats
}
