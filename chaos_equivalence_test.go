package fsjoin

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"
)

// chaosSchedules is the top-level chaos matrix: 28 seeded fault schedules
// (each mixing panics, transient errors, emit-phase failures and
// straggler delays across map, combine and reduce tasks) derived from the
// schedule index alone, so any failure is re-runnable from its seed. The
// knob derivation cycles intensity through {0.2, 0.35, 0.5, 0.8}, enables
// speculative execution on odd indices and retry backoff on every third.
func chaosSchedules(n int) []FaultOptions {
	out := make([]FaultOptions, n)
	for i := range out {
		f := FaultOptions{
			ChaosSeed:      9000 + int64(i)*1_000_003,
			ChaosIntensity: []float64{0.2, 0.35, 0.5, 0.8}[i%4],
			MaxAttempts:    4,
		}
		if i%2 == 1 {
			f.SpeculativeDelay = 500 * time.Microsecond
		}
		if i%3 == 0 {
			f.RetryBackoffBase = 50 * time.Microsecond
		}
		out[i] = f
	}
	return out
}

// TestChaosEquivalenceAllAlgorithms runs the full 3-phase FS-Join
// pipeline and every baseline under the chaos matrix at parallelism 4
// (and, for a third of the schedules, sequentially) and asserts pairs and
// every deterministic statistic are byte-identical to the fault-free run.
// Under -race this doubles as a concurrency audit of the retry,
// speculation and injection paths.
func TestChaosEquivalenceAllAlgorithms(t *testing.T) {
	texts := corpus(60, 7)
	schedules := chaosSchedules(28)
	type detStats struct {
		ShuffleRecords, ShuffleBytes, Candidates int64
		LoadImbalance                            float64
	}
	det := func(s Stats) detStats {
		return detStats{
			ShuffleRecords: s.ShuffleRecords, ShuffleBytes: s.ShuffleBytes,
			Candidates: s.Candidates, LoadImbalance: s.LoadImbalance,
		}
	}
	for _, algo := range []Algorithm{FSJoin, RIDPairsPPJoin, VSmartJoin, MassJoinMerge} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			opts := Options{Threshold: 0.7, Algorithm: algo, Nodes: 3, LocalParallelism: 1}
			want, err := SelfJoinStrings(texts, opts)
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			if algo == FSJoin && len(want.Pairs) == 0 {
				t.Fatal("fault-free run found no pairs — corpus too sparse to prove anything")
			}
			for i, fault := range schedules {
				pars := []int{4}
				if i%3 == 0 {
					pars = []int{1, 4}
				}
				for _, par := range pars {
					opts.LocalParallelism = par
					opts.Fault = fault
					got, err := SelfJoinStrings(texts, opts)
					if err != nil {
						t.Fatalf("schedule %d (seed %d) par %d: %v", i, fault.ChaosSeed, par, err)
					}
					if !reflect.DeepEqual(got.Pairs, want.Pairs) {
						t.Fatalf("schedule %d (seed %d) par %d: pairs differ (%d vs %d)",
							i, fault.ChaosSeed, par, len(got.Pairs), len(want.Pairs))
					}
					if g, w := det(got.Stats), det(want.Stats); g != w {
						t.Fatalf("schedule %d (seed %d) par %d: stats differ\n got %+v\nwant %+v",
							i, fault.ChaosSeed, par, g, w)
					}
				}
			}
		})
	}
}

// TestChaosEquivalenceRS runs the R-S join paths (two halves of the
// corpus as R and S, overlapping rid spaces) under ten chaos schedules at
// parallelism 4 (and, for a third of them, sequentially) and asserts
// pairs, deterministic statistics and the rs.pairs.* counters are
// byte-identical to the fault-free run.
func TestChaosEquivalenceRS(t *testing.T) {
	texts := corpus(60, 7)
	type detStats struct {
		ShuffleRecords, ShuffleBytes, Candidates int64
		RSCandidates, RSPairs                    int64
	}
	det := func(s Stats) detStats {
		return detStats{
			ShuffleRecords: s.ShuffleRecords, ShuffleBytes: s.ShuffleBytes,
			Candidates: s.Candidates, RSCandidates: s.RSCandidates, RSPairs: s.RSPairs,
		}
	}
	for _, algo := range []Algorithm{FSJoin, RIDPairsPPJoin, VSmartJoin} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			opts := Options{Threshold: 0.7, Algorithm: algo, Nodes: 3, LocalParallelism: 1}
			want, err := runMatrixJoin(texts, opts, true)
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			if algo == FSJoin && len(want.Pairs) == 0 {
				t.Fatal("fault-free run found no pairs — corpus too sparse to prove anything")
			}
			for i, fault := range chaosSchedules(10) {
				pars := []int{4}
				if i%3 == 0 {
					pars = []int{1, 4}
				}
				for _, par := range pars {
					opts.LocalParallelism = par
					opts.Fault = fault
					got, err := runMatrixJoin(texts, opts, true)
					if err != nil {
						t.Fatalf("schedule %d (seed %d) par %d: %v", i, fault.ChaosSeed, par, err)
					}
					if !reflect.DeepEqual(got.Pairs, want.Pairs) {
						t.Fatalf("schedule %d (seed %d) par %d: pairs differ (%d vs %d)",
							i, fault.ChaosSeed, par, len(got.Pairs), len(want.Pairs))
					}
					if g, w := det(got.Stats), det(want.Stats); g != w {
						t.Fatalf("schedule %d (seed %d) par %d: stats differ\n got %+v\nwant %+v",
							i, fault.ChaosSeed, par, g, w)
					}
				}
			}
		})
	}
}

// waitNoSpillFiles asserts dir drains to empty, polling briefly because a
// lost speculative attempt's spill files are discarded by a reaper
// goroutine after the loser finishes, which may be shortly after the job
// itself returns.
func waitNoSpillFiles(t *testing.T, label, dir string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err == nil && len(ents) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: spill files leaked: %v (read err %v)", label, ents, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosTinyBudgetEquivalence crosses the chaos matrix with the
// out-of-core shuffle: ten seeded fault schedules, a 1 KiB memory budget
// that provably spills, parallelism 1 and 4. Every run must reproduce the
// fault-free unbounded pairs and shuffle accounting byte-for-byte, and
// every spill directory must drain to empty even when attempts are
// retried or lose a speculative race mid-spill.
func TestChaosTinyBudgetEquivalence(t *testing.T) {
	texts := corpus(200, 7)
	base := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	want, err := SelfJoinStrings(texts, base)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if len(want.Pairs) == 0 {
		t.Fatal("fault-free run found no pairs — corpus too sparse to prove anything")
	}

	// Fault-free budgeted probe: the budget must actually bind on this
	// corpus, otherwise the chaos sweep below exercises nothing new.
	probe := base
	probe.MemoryBudget = 1 << 10
	probe.SpillDir = t.TempDir()
	pres, err := SelfJoinStrings(texts, probe)
	if err != nil {
		t.Fatalf("budgeted probe: %v", err)
	}
	if pres.Stats.SpillRuns < 2 {
		t.Fatalf("budgeted probe spilled only %d runs — budget not binding", pres.Stats.SpillRuns)
	}

	for i, fault := range chaosSchedules(10) {
		for _, par := range []int{1, 4} {
			dir := t.TempDir()
			opts := base
			opts.LocalParallelism = par
			opts.MemoryBudget = 1 << 10
			opts.SpillDir = dir
			opts.Fault = fault
			got, err := SelfJoinStrings(texts, opts)
			label := fmt.Sprintf("schedule %d", i)
			if err != nil {
				t.Fatalf("%s (seed %d) par %d: %v", label, fault.ChaosSeed, par, err)
			}
			if !reflect.DeepEqual(got.Pairs, want.Pairs) {
				t.Fatalf("%s (seed %d) par %d: pairs differ (%d vs %d)",
					label, fault.ChaosSeed, par, len(got.Pairs), len(want.Pairs))
			}
			if got.Stats.ShuffleRecords != want.Stats.ShuffleRecords ||
				got.Stats.ShuffleBytes != want.Stats.ShuffleBytes {
				t.Fatalf("%s (seed %d) par %d: shuffle accounting drifted: (%d,%d) vs (%d,%d)",
					label, fault.ChaosSeed, par,
					got.Stats.ShuffleRecords, got.Stats.ShuffleBytes,
					want.Stats.ShuffleRecords, want.Stats.ShuffleBytes)
			}
			waitNoSpillFiles(t, label, dir)
		}
	}
}

// TestChaosSeedReproducible: the same ChaosSeed injects the same schedule
// — two chaotic runs agree with each other (and, transitively through the
// equivalence test above, with the fault-free run).
func TestChaosSeedReproducible(t *testing.T) {
	texts := corpus(50, 11)
	opts := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1,
		Fault: FaultOptions{ChaosSeed: 424242, ChaosIntensity: 0.8}}
	a, err := SelfJoinStrings(texts, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfJoinStrings(texts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Pairs, b.Pairs) || a.Stats.ShuffleRecords != b.Stats.ShuffleRecords {
		t.Fatal("identical chaos seeds produced different runs")
	}
}

// TestChaosRetryBudgetExhaustion: with MaxAttempts 1 the engine may not
// retry, so a crash-injecting schedule must surface as a job error — the
// injected fault message intact — rather than wrong output.
func TestChaosRetryBudgetExhaustion(t *testing.T) {
	texts := corpus(50, 11)
	want, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for seed := int64(1); seed <= 10 && !failed; seed++ {
		res, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1,
			Fault: FaultOptions{ChaosSeed: seed, ChaosIntensity: 0.9, MaxAttempts: 1}})
		if err != nil {
			failed = true
			continue
		}
		// A schedule that happened to only inject delays still succeeds —
		// output must then be exact.
		if !reflect.DeepEqual(res.Pairs, want.Pairs) {
			t.Fatalf("seed %d: survived with wrong output", seed)
		}
	}
	if !failed {
		t.Fatal("no schedule aborted under MaxAttempts 1 at intensity 0.9 — injection inert")
	}
}
